package value

import (
	"fmt"
)

// RecordArena is the columnar, zero-per-row-allocation sample representation
// the estimation hot path runs on. All appended rows are encoded into two
// contiguous buffers — the fixed-width record encoding (EncodeRecord) and the
// order-preserving memcomparable key encoding (EncodeKey) — addressed by row
// index: because both encodings are exactly Schema.RowWidth() bytes per row,
// row i lives at byte offset i·RowWidth() in each buffer. Replacing the
// previous per-row [][]byte pairs (two heap objects per sampled row, plus a
// clone per column on retention) with offset addressing is what takes
// PrepareIndex from ~5 allocations per sampled row to a handful per sample.
//
// Key derivation exploits that EncodeKey differs from EncodeRecord only in
// integer columns' leading sign bit (flipped so unsigned byte comparison
// matches signed order): the key buffer is a copy of the record bytes with
// one XOR per integer column. Character columns are identical in both.
//
// A RecordArena is not safe for concurrent mutation; once filled it may be
// read from any number of goroutines. The zero value is unusable — construct
// with NewRecordArena.
type RecordArena struct {
	schema *Schema
	w      int // schema.RowWidth()
	// intOffs holds the byte offset of each integer column's first (sign)
	// byte within a record, precomputed for key derivation.
	intOffs []int
	recs    []byte // n·w bytes of fixed-width records
	keys    []byte // n·w bytes of memcomparable keys
	n       int
}

// NewRecordArena returns an empty arena for rows of schema, with capacity
// pre-sized for capRows rows.
func NewRecordArena(schema *Schema, capRows int) *RecordArena {
	if capRows < 0 {
		capRows = 0
	}
	a := &RecordArena{
		schema: schema,
		w:      schema.RowWidth(),
		recs:   make([]byte, 0, capRows*schema.RowWidth()),
		keys:   make([]byte, 0, capRows*schema.RowWidth()),
	}
	off := 0
	for i := 0; i < schema.NumColumns(); i++ {
		t := schema.Column(i).Type
		if !t.IsCharacter() {
			a.intOffs = append(a.intOffs, off)
		}
		off += t.FixedWidth()
	}
	return a
}

// Schema returns the arena's row schema.
func (a *RecordArena) Schema() *Schema { return a.schema }

// Len returns the number of rows in the arena.
func (a *RecordArena) Len() int { return a.n }

// RowWidth returns the per-row byte width of both buffers.
func (a *RecordArena) RowWidth() int { return a.w }

// Rec returns row i's fixed-width record. The slice aliases the arena.
func (a *RecordArena) Rec(i int) []byte { return a.recs[i*a.w : (i+1)*a.w : (i+1)*a.w] }

// Key returns row i's memcomparable key. The slice aliases the arena.
func (a *RecordArena) Key(i int) []byte { return a.keys[i*a.w : (i+1)*a.w : (i+1)*a.w] }

// Recs returns the whole record buffer (n·RowWidth bytes, row-major).
func (a *RecordArena) Recs() []byte { return a.recs }

// Keys returns the whole key buffer (n·RowWidth bytes, row-major).
func (a *RecordArena) Keys() []byte { return a.keys }

// Reset empties the arena, retaining both buffers' capacity.
func (a *RecordArena) Reset() {
	a.recs = a.recs[:0]
	a.keys = a.keys[:0]
	a.n = 0
}

// Append validates row against the schema and encodes its record and key
// into the arena. Equivalent to EncodeRecord + EncodeKey on fresh buffers,
// but amortized: steady-state appends never allocate.
func (a *RecordArena) Append(row Row) error {
	if err := ValidateRow(a.schema, row); err != nil {
		return err
	}
	a.appendUnchecked(row)
	return nil
}

// appendUnchecked is Append without validation, for callers that already
// validated (e.g. rows re-read from storage that validated on write).
func (a *RecordArena) appendUnchecked(row Row) {
	start := len(a.recs)
	for i, v := range row {
		t := a.schema.Column(i).Type
		a.recs = append(a.recs, v...)
		for pad := t.FixedWidth() - len(v); pad > 0; pad-- {
			a.recs = append(a.recs, t.PadByte())
		}
	}
	a.keys = append(a.keys, a.recs[start:]...)
	for _, off := range a.intOffs {
		a.keys[start+off] ^= 0x80
	}
	a.n++
}

// AppendRec appends a row given its fixed-width record encoding (exactly
// RowWidth bytes), deriving the key by copy + sign flips. This is the pure
// byte-level ingestion path: no Row materialization anywhere.
func (a *RecordArena) AppendRec(rec []byte) error {
	if len(rec) != a.w {
		return fmt.Errorf("value: arena record is %d bytes, schema %s requires %d", len(rec), a.schema, a.w)
	}
	start := len(a.recs)
	a.recs = append(a.recs, rec...)
	a.keys = append(a.keys, rec...)
	for _, off := range a.intOffs {
		a.keys[start+off] ^= 0x80
	}
	a.n++
	return nil
}

// SetRow overwrites row i in place with the encoding of row. Width is fixed,
// so in-place replacement never moves other rows; maintained (reservoir)
// samples rely on this for slot eviction.
func (a *RecordArena) SetRow(i int, row Row) error {
	if i < 0 || i >= a.n {
		return fmt.Errorf("value: arena row %d out of range [0,%d)", i, a.n)
	}
	if err := ValidateRow(a.schema, row); err != nil {
		return err
	}
	start := i * a.w
	off := start
	for c, v := range row {
		t := a.schema.Column(c).Type
		off += copy(a.recs[off:], v)
		for pad := t.FixedWidth() - len(v); pad > 0; pad-- {
			a.recs[off] = t.PadByte()
			off++
		}
	}
	copy(a.keys[start:start+a.w], a.recs[start:start+a.w])
	for _, o := range a.intOffs {
		a.keys[start+o] ^= 0x80
	}
	return nil
}

// MoveRow copies row src over row dst (record and key) — the swap-with-last
// primitive reservoir deletion uses.
func (a *RecordArena) MoveRow(dst, src int) {
	if dst == src {
		return
	}
	copy(a.recs[dst*a.w:(dst+1)*a.w], a.recs[src*a.w:(src+1)*a.w])
	copy(a.keys[dst*a.w:(dst+1)*a.w], a.keys[src*a.w:(src+1)*a.w])
}

// Grow appends n zeroed rows, extending the arena to Len()+n. The new
// slots hold no valid encoding until overwritten; pair with SetRow, which
// rewrites a slot's record and key bytes completely. Pre-growing and
// filling disjoint slot ranges from multiple goroutines is the parallel
// bulk-ingestion pattern sharded full-table scans use — SetRow touches
// only its own row's byte ranges, so disjoint slots never race.
func (a *RecordArena) Grow(n int) {
	if n <= 0 {
		return
	}
	a.recs = zeroExtend(a.recs, n*a.w)
	a.keys = zeroExtend(a.keys, n*a.w)
	a.n += n
}

// zeroExtend lengthens b by n zeroed bytes without the transient zero
// buffer append(b, make([]byte, n)...) would build: when capacity is
// already reserved (NewRecordArena pre-sizes for the caller's row count)
// it reslices in place and clears only the exposed region, which may hold
// stale bytes from a previous Truncate or Reset.
func zeroExtend(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		m := len(b)
		b = b[:m+n]
		clear(b[m:])
		return b
	}
	return append(b, make([]byte, n)...)
}

// Truncate shortens the arena to n rows.
func (a *RecordArena) Truncate(n int) {
	if n < 0 || n > a.n {
		return
	}
	a.recs = a.recs[:n*a.w]
	a.keys = a.keys[:n*a.w]
	a.n = n
}

// Row decodes row i back into a per-column Row (allocating; the payloads
// alias the arena). For slow paths and tests — the hot path never decodes.
func (a *RecordArena) Row(i int) (Row, error) {
	return DecodeRecord(a.schema, a.Rec(i))
}

// Freeze returns an immutable snapshot header over the arena's current
// rows in O(1): the snapshot shares the backing buffers with a, capped at
// today's length. The contract that makes this safe for concurrent readers
// is append-only growth — the owner may keep Appending to a (writes land
// past the frozen length, or reallocate both buffers entirely) but must
// never SetRow/MoveRow/Truncate/Reset rows the snapshot covers, because
// those mutate the shared prefix in place. Capacity is clamped to length
// (three-index slices), so even an accidental append through the snapshot
// copies instead of clobbering the owner's bytes.
func (a *RecordArena) Freeze() *RecordArena {
	return &RecordArena{
		schema:  a.schema,
		w:       a.w,
		intOffs: a.intOffs,
		recs:    a.recs[:len(a.recs):len(a.recs)],
		keys:    a.keys[:len(a.keys):len(a.keys)],
		n:       a.n,
	}
}

// Clone returns a deep copy of the arena.
func (a *RecordArena) Clone() *RecordArena {
	out := &RecordArena{
		schema:  a.schema,
		w:       a.w,
		intOffs: a.intOffs,
		recs:    append([]byte(nil), a.recs...),
		keys:    append([]byte(nil), a.keys...),
		n:       a.n,
	}
	return out
}

// AppendFrom appends rows src[idx] for each idx in order — the gather
// primitive subsampling uses (e.g. drawing a WOR subsample of a maintained
// sample). Rows are copied byte-wise; no re-encoding happens.
func (a *RecordArena) AppendFrom(src *RecordArena, order []int64) error {
	if src.w != a.w {
		return fmt.Errorf("value: arena gather across schemas %s and %s", src.schema, a.schema)
	}
	for _, idx := range order {
		if idx < 0 || idx >= int64(src.n) {
			return fmt.Errorf("value: arena gather index %d out of range [0,%d)", idx, src.n)
		}
		a.recs = append(a.recs, src.recs[idx*int64(a.w):(idx+1)*int64(a.w)]...)
		a.keys = append(a.keys, src.keys[idx*int64(a.w):(idx+1)*int64(a.w)]...)
		a.n++
	}
	return nil
}

// AppendAll appends every row of src (records and keys, byte-wise) — the
// bulk-extension primitive resumable sampling uses to merge a newly drawn
// round into a growing sample. Schemas must have identical row widths;
// rows are copied, so src may be discarded or reused afterwards.
func (a *RecordArena) AppendAll(src *RecordArena) error {
	if src.w != a.w {
		return fmt.Errorf("value: arena append across schemas %s and %s", src.schema, a.schema)
	}
	a.recs = append(a.recs, src.recs...)
	a.keys = append(a.keys, src.keys...)
	a.n += src.n
	return nil
}

// ProjectTo appends every row of the arena, restricted to the columns at
// positions proj (which must match dst's schema), into dst. Projection is a
// per-column byte-range copy out of the record and key buffers: both
// encodings are column-aligned, and key bytes of a column are independent of
// its neighbors, so projected keys equal re-encoded keys byte-for-byte.
func (a *RecordArena) ProjectTo(dst *RecordArena, proj []int) error {
	if len(proj) != dst.schema.NumColumns() {
		return fmt.Errorf("value: projection has %d columns, destination schema %s has %d",
			len(proj), dst.schema, dst.schema.NumColumns())
	}
	// Resolve [start,end) source ranges per projected column, verifying
	// type agreement.
	offsets := a.schema.ColumnOffsets()
	type span struct{ start, width int }
	spans := make([]span, len(proj))
	for i, p := range proj {
		if p < 0 || p >= a.schema.NumColumns() {
			return fmt.Errorf("value: projection index %d out of range", p)
		}
		if a.schema.Column(p).Type != dst.schema.Column(i).Type {
			return fmt.Errorf("value: projected column %d type %s does not match destination %s",
				p, a.schema.Column(p).Type, dst.schema.Column(i).Type)
		}
		spans[i] = span{start: offsets[p][0], width: offsets[p][1] - offsets[p][0]}
	}
	for r := 0; r < a.n; r++ {
		base := r * a.w
		for _, sp := range spans {
			a.copySpan(dst, base+sp.start, sp.width)
		}
		dst.n++
	}
	return nil
}

// copySpan appends one column span of one row to dst's buffers.
func (a *RecordArena) copySpan(dst *RecordArena, start, width int) {
	dst.recs = append(dst.recs, a.recs[start:start+width]...)
	dst.keys = append(dst.keys, a.keys[start:start+width]...)
}
