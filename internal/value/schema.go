package value

import "fmt"

// Column is a named, typed column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. In index context, the column order is
// the key order.
type Schema struct {
	cols     []Column
	byName   map[string]int
	rowWidth int
	offsets  [][2]int
}

// NewSchema builds a schema from the given columns, validating types and
// name uniqueness.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("value: schema must have at least one column")
	}
	s := &Schema{
		cols:   make([]Column, len(cols)),
		byName: make(map[string]int, len(cols)),
	}
	copy(s.cols, cols)
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("value: column %d has empty name", i)
		}
		if err := c.Type.Validate(); err != nil {
			return nil, fmt.Errorf("value: column %q: %w", c.Name, err)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("value: duplicate column name %q", c.Name)
		}
		s.byName[c.Name] = i
		s.offsets = append(s.offsets, [2]int{s.rowWidth, s.rowWidth + c.Type.FixedWidth()})
		s.rowWidth += c.Type.FixedWidth()
	}
	return s, nil
}

// ColumnOffsets returns the [start, end) byte range of each column within a
// fixed-width record. The slice is shared and must not be mutated.
func (s *Schema) ColumnOffsets() [][2]int { return s.offsets }

// MustSchema is NewSchema that panics on error; intended for tests and
// examples with literal schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// ColumnIndex returns the position of the named column and whether it exists.
func (s *Schema) ColumnIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// RowWidth returns the fixed-width (uncompressed) size in bytes of one record.
func (s *Schema) RowWidth() int { return s.rowWidth }

// Project returns a new schema containing only the named columns, in the
// given order. Used to derive index key schemas from a table schema.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i, ok := s.byName[n]
		if !ok {
			return nil, fmt.Errorf("value: no column named %q", n)
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...)
}

// String renders the schema as "(a CHAR(20), b INT)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Type.String()
	}
	return out + ")"
}
