// Package rng provides a small, deterministic pseudo-random number generator
// used throughout the repository.
//
// Experiments in this repo must be exactly reproducible across runs and
// platforms, and must be able to derive independent sub-streams (one per
// trial, one per column, ...) from a single master seed. math/rand's global
// state and Go-version-dependent behaviour make that awkward, so we implement
// PCG-XSH-RR 64/32 (O'Neill, 2014) plus a SplitMix64 seeder. Both are public
// domain algorithms; the implementation below is written from the published
// reference descriptions.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding so that correlated user seeds (0, 1, 2, ...) still
// produce decorrelated PCG streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a PCG-XSH-RR 64/32 generator. The zero value is not usable; create
// instances with New or Derive.
type RNG struct {
	state uint64
	inc   uint64 // stream selector; must be odd
}

// New returns a generator seeded from seed. Distinct seeds yield
// decorrelated streams.
func New(seed uint64) *RNG {
	sm := seed
	r := &RNG{}
	r.state = splitMix64(&sm)
	r.inc = splitMix64(&sm) | 1
	// Advance once so that state reflects inc.
	r.next()
	return r
}

// Derive returns a new independent generator deterministically derived from r
// and the given label. It does not perturb r's own sequence, so sub-streams
// may be created lazily without affecting reproducibility of the parent.
func (r *RNG) Derive(label uint64) *RNG {
	sm := r.state ^ (r.inc * 0x9e3779b97f4a7c15) ^ label
	d := &RNG{}
	d.state = splitMix64(&sm)
	d.inc = splitMix64(&sm) | 1
	d.next()
	return d
}

// next advances the PCG state and returns 32 output bits.
func (r *RNG) next() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next() }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.next())
	lo := uint64(r.next())
	return hi<<32 | lo
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling on the top bits: unbiased for all n.
	// threshold = 2^64 mod n computed as (-n) mod n.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with rate 1,
// via inverse-CDF transform.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal value using the Marsaglia polar
// method (no cached spare, to keep the generator state minimal).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, via
// Fisher-Yates. It panics if n < 0.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
