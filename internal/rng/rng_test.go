package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("iteration %d: streams diverged: %d vs %d", i, got, want)
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a := New(0)
	b := New(1)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 0 and 1 produced %d identical outputs out of %d", same, n)
	}
}

func TestDeriveIndependent(t *testing.T) {
	parent := New(7)
	// Deriving must not perturb the parent stream.
	ref := New(7)
	for i := 0; i < 10; i++ {
		parent.Uint64()
		ref.Uint64()
	}
	child := parent.Derive(123)
	for i := 0; i < 100; i++ {
		if got, want := parent.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("Derive perturbed parent at step %d", i)
		}
	}
	// Same label from same point yields same child stream.
	parent2 := New(7)
	for i := 0; i < 10; i++ {
		parent2.Uint64()
	}
	child2 := parent2.Derive(123)
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatalf("Derive is not deterministic at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check over 8 buckets.
	r := New(99)
	const buckets = 8
	const n = 80000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d far from expected %.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %.4f too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %.4f too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid permutation %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	// Property: shuffling preserves the multiset of elements.
	f := func(seed uint64, raw []byte) bool {
		r := New(seed)
		vals := make([]int, len(raw))
		counts := map[int]int{}
		for i, b := range raw {
			vals[i] = int(b)
			counts[int(b)]++
		}
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for _, v := range vals {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn1000(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
