package compress

import (
	"samplecf/internal/value"
)

// NullSuppression is the paper's NS technique (§II-A, Fig. 1a): each column
// value is stored as its actual bytes plus a small length header, dropping
// the padding that fixed-width storage wastes. Columns are compressed
// independently, matching the paper's multi-column treatment.
//
// For a CHAR(k) column the encoded size of one value is exactly ℓ + h where
// ℓ is the value's actual length and h = lenHeaderSize(k), so the codec's
// measured CF equals the paper's analytical CF_NS = Σ(ℓᵢ+h)/(n·k).
type NullSuppression struct{}

// Name implements PageCodec.
func (NullSuppression) Name() string { return "nullsuppression" }

// EncodePage implements PageCodec.
func (ns NullSuppression) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	// Size hint: assume half the fixed width survives.
	out, _, err := ns.AppendPage(schema, records, make([]byte, 0, len(records)*schema.RowWidth()/2+16))
	return out, err
}

// AppendPage implements PageAppender.
func (NullSuppression) AppendPage(schema *value.Schema, records [][]byte, dst []byte) ([]byte, int64, error) {
	if err := checkRecords(schema, records); err != nil {
		return dst, 0, err
	}
	cols := columnOffsets(schema)
	out := dst
	for _, rec := range records {
		for c := range cols {
			t := schema.Column(c).Type
			stored := rec[cols[c][0]:cols[c][1]]
			sup := suppressColumn(t, stored)
			out = putLen(out, len(sup), lenHeaderSize(t.FixedWidth()))
			out = append(out, sup...)
		}
	}
	return out, 0, nil
}

// DecodePage implements PageCodec. The record count is implied by input
// exhaustion (the page framing above this layer carries no explicit count
// for NS, mirroring row-compressed pages that are self-delimiting).
func (NullSuppression) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	cols := columnOffsets(schema)
	var records [][]byte
	for len(data) > 0 {
		rec := make([]byte, schema.RowWidth())
		for c := range cols {
			t := schema.Column(c).Type
			h := lenHeaderSize(t.FixedWidth())
			l, rest, err := getLen(data, h)
			if err != nil {
				return nil, err
			}
			if l > t.FixedWidth() || len(rest) < l {
				return nil, ErrCorrupt
			}
			expandInto(t, rest[:l], rec[cols[c][0]:cols[c][1]])
			data = rest[l:]
		}
		records = append(records, rec)
	}
	return records, nil
}

// EncodedRecordSize returns the NS-encoded size of one record without
// materializing it: Σ over columns of (ℓ + h). Used by analytical paths.
func (NullSuppression) EncodedRecordSize(schema *value.Schema, rec []byte) int {
	cols := columnOffsets(schema)
	size := 0
	for c := range cols {
		t := schema.Column(c).Type
		sup := suppressColumn(t, rec[cols[c][0]:cols[c][1]])
		size += len(sup) + lenHeaderSize(t.FixedWidth())
	}
	return size
}

func init() {
	Register("nullsuppression", func() Codec { return Paged{PC: NullSuppression{}} })
}
