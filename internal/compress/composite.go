package compress

import (
	"fmt"
	"sync"

	"samplecf/internal/value"
)

// PickBest encodes each page with every member codec and keeps the smallest
// result, prefixed with a 1-byte member tag. This mirrors how engines decide
// per page whether richer compression pays for itself — and it is exactly
// the kind of codec a sampling estimator must stay agnostic to, since the
// winning member can differ between the sample and the full index.
type PickBest struct {
	Members []PageCodec
	Label   string

	lastEntries int64
}

// NewPageCompression returns the default composite approximating commercial
// "PAGE" compression: NS, prefix, page dictionary (row-compressed entries),
// and RLE compete per page.
func NewPageCompression() *PickBest {
	return &PickBest{
		Label: "page",
		Members: []PageCodec{
			NullSuppression{},
			Prefix{},
			&PageDict{EntryNS: true},
			RLE{},
		},
	}
}

// Name implements PageCodec.
func (p *PickBest) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "pickbest"
}

// EncodePage implements PageCodec.
func (p *PickBest) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	out, entries, err := p.AppendPage(schema, records, nil)
	if err != nil {
		return nil, err
	}
	p.lastEntries = entries
	return out, nil
}

// pickScratch pools the two candidate buffers a PickBest encode ping-pongs
// between: the best-so-far encoding and the current member's attempt.
type pickScratch struct {
	best, cand []byte
}

var pickScratchPool = sync.Pool{New: func() any { return &pickScratch{} }}

// AppendPage implements PageAppender. Every member codec encodes into
// pooled scratch; only the winner's bytes are copied to dst.
func (p *PickBest) AppendPage(schema *value.Schema, records [][]byte, dst []byte) ([]byte, int64, error) {
	if len(p.Members) == 0 || len(p.Members) > 255 {
		return dst, 0, fmt.Errorf("compress: pickbest needs 1..255 members, has %d", len(p.Members))
	}
	sc := pickScratchPool.Get().(*pickScratch)
	defer pickScratchPool.Put(sc)
	// DictEntries mirrors the historical (conservative) accounting: the sum
	// over all dictionary members' encodes, whether or not one won the page.
	var dictEntries int64
	// Two buffers rotate: `best` holds the winner so far, `scratch` is the
	// next member's encode target; when a member wins, the old best buffer
	// becomes the new scratch.
	best := sc.best[:0]
	bestTag := -1
	scratch := sc.cand[:0]
	for tag, m := range p.Members {
		var enc []byte
		var de int64
		var err error
		if ap, ok := m.(PageAppender); ok {
			enc, de, err = ap.AppendPage(schema, records, scratch)
		} else {
			enc, err = m.EncodePage(schema, records)
			if dc, ok := m.(dictEntryCounter); ok {
				de = dc.lastDictEntries()
			}
		}
		if err != nil {
			return dst, 0, fmt.Errorf("compress: member %s: %w", m.Name(), err)
		}
		dictEntries += de
		if bestTag < 0 || len(enc) < len(best) {
			best, scratch = enc, best[:0]
			bestTag = tag
		} else {
			scratch = enc[:0]
		}
	}
	sc.best, sc.cand = best[:0], scratch
	out := append(dst, byte(bestTag))
	return append(out, best...), dictEntries, nil
}

// DecodePage implements PageCodec.
func (p *PickBest) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	tag := int(data[0])
	if tag >= len(p.Members) {
		return nil, ErrCorrupt
	}
	return p.Members[tag].DecodePage(schema, data[1:])
}

// lastDictEntries implements dictEntryCounter for direct EncodePage use:
// the conservative sum over every dictionary member's encode of the last
// page, whether or not one won it (AppendPage reports the same sum
// functionally).
func (p *PickBest) lastDictEntries() int64 { return p.lastEntries }

func init() {
	Register("page", func() Codec { return Paged{PC: NewPageCompression()} })
}
