package compress

import (
	"fmt"

	"samplecf/internal/value"
)

// PickBest encodes each page with every member codec and keeps the smallest
// result, prefixed with a 1-byte member tag. This mirrors how engines decide
// per page whether richer compression pays for itself — and it is exactly
// the kind of codec a sampling estimator must stay agnostic to, since the
// winning member can differ between the sample and the full index.
type PickBest struct {
	Members []PageCodec
	Label   string
}

// NewPageCompression returns the default composite approximating commercial
// "PAGE" compression: NS, prefix, page dictionary (row-compressed entries),
// and RLE compete per page.
func NewPageCompression() *PickBest {
	return &PickBest{
		Label: "page",
		Members: []PageCodec{
			NullSuppression{},
			Prefix{},
			&PageDict{EntryNS: true},
			RLE{},
		},
	}
}

// Name implements PageCodec.
func (p *PickBest) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "pickbest"
}

// EncodePage implements PageCodec.
func (p *PickBest) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	if len(p.Members) == 0 || len(p.Members) > 255 {
		return nil, fmt.Errorf("compress: pickbest needs 1..255 members, has %d", len(p.Members))
	}
	var best []byte
	bestTag := -1
	for tag, m := range p.Members {
		enc, err := m.EncodePage(schema, records)
		if err != nil {
			return nil, fmt.Errorf("compress: member %s: %w", m.Name(), err)
		}
		if bestTag < 0 || len(enc) < len(best) {
			best = enc
			bestTag = tag
		}
	}
	out := make([]byte, 0, len(best)+1)
	out = append(out, byte(bestTag))
	return append(out, best...), nil
}

// DecodePage implements PageCodec.
func (p *PickBest) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	tag := int(data[0])
	if tag >= len(p.Members) {
		return nil, ErrCorrupt
	}
	return p.Members[tag].DecodePage(schema, data[1:])
}

// lastDictEntries surfaces the dictionary size when the winning member was
// a dictionary codec. Conservative: reports the PageDict member's last
// encode, which PickBest always invokes.
func (p *PickBest) lastDictEntries() int64 {
	var total int64
	for _, m := range p.Members {
		if de, ok := m.(dictEntryCounter); ok {
			total += de.lastDictEntries()
		}
	}
	return total
}

func init() {
	Register("page", func() Codec { return Paged{PC: NewPageCompression()} })
}
