package compress

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// mkRecords encodes rows under schema into fixed-width records.
func mkRecords(t testing.TB, schema *value.Schema, rows []value.Row) [][]byte {
	t.Helper()
	recs := make([][]byte, len(rows))
	for i, r := range rows {
		rec, err := value.EncodeRecord(schema, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
	}
	return recs
}

// charSchema is the paper's model: a single CHAR(k) column.
func charSchema(k int) *value.Schema {
	return value.MustSchema(value.Column{Name: "a", Type: value.Char(k)})
}

// randomRows generates rows over a mixed schema for property tests.
func randomRows(r *rng.RNG, schema *value.Schema, n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		row := make(value.Row, schema.NumColumns())
		for c := 0; c < schema.NumColumns(); c++ {
			t := schema.Column(c).Type
			switch t.Kind {
			case value.KindChar, value.KindVarChar:
				l := r.Intn(t.Length + 1)
				b := make([]byte, l)
				for j := range b {
					b[j] = byte('a' + r.Intn(26))
				}
				row[c] = b
			case value.KindInt32:
				row[c] = value.IntValue(int32(r.Uint32()))
			case value.KindInt64:
				row[c] = value.Int64Value(int64(r.Uint64()))
			}
		}
		rows[i] = row
	}
	return rows
}

var pageCodecs = []PageCodec{
	NullSuppression{},
	&PageDict{},
	&PageDict{EntryNS: true},
	Prefix{},
	RLE{},
	NewPageCompression(),
}

func TestPageCodecsRoundTripMixedSchema(t *testing.T) {
	schema := value.MustSchema(
		value.Column{Name: "s", Type: value.Char(20)},
		value.Column{Name: "n", Type: value.Int32()},
		value.Column{Name: "v", Type: value.VarChar(12)},
		value.Column{Name: "b", Type: value.Int64()},
	)
	r := rng.New(42)
	rows := randomRows(r, schema, 200)
	recs := mkRecords(t, schema, rows)
	for _, pc := range pageCodecs {
		enc, err := pc.EncodePage(schema, recs)
		if err != nil {
			t.Fatalf("%s encode: %v", pc.Name(), err)
		}
		dec, err := pc.DecodePage(schema, enc)
		if err != nil {
			t.Fatalf("%s decode: %v", pc.Name(), err)
		}
		if len(dec) != len(recs) {
			t.Fatalf("%s: decoded %d records, want %d", pc.Name(), len(dec), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(dec[i], recs[i]) {
				t.Fatalf("%s: record %d mismatch\n got %x\nwant %x", pc.Name(), i, dec[i], recs[i])
			}
		}
	}
}

func TestPageCodecsEmptyPage(t *testing.T) {
	schema := charSchema(10)
	for _, pc := range pageCodecs {
		enc, err := pc.EncodePage(schema, nil)
		if err != nil {
			t.Fatalf("%s encode empty: %v", pc.Name(), err)
		}
		dec, err := pc.DecodePage(schema, enc)
		if err != nil {
			t.Fatalf("%s decode empty: %v", pc.Name(), err)
		}
		if len(dec) != 0 {
			t.Fatalf("%s: empty page decoded to %d records", pc.Name(), len(dec))
		}
	}
}

func TestPageCodecsRejectBadRecords(t *testing.T) {
	schema := charSchema(10)
	bad := [][]byte{make([]byte, 3)} // wrong width
	for _, pc := range pageCodecs {
		if _, err := pc.EncodePage(schema, bad); err == nil {
			t.Errorf("%s accepted wrong-width record", pc.Name())
		}
	}
}

func TestPageCodecsRejectCorruptPayloads(t *testing.T) {
	schema := charSchema(10)
	rows := []value.Row{{value.StringValue("hello")}, {value.StringValue("world")}}
	recs := mkRecords(t, schema, rows)
	for _, pc := range pageCodecs {
		enc, err := pc.EncodePage(schema, recs)
		if err != nil {
			t.Fatal(err)
		}
		// Truncations must not panic; most must error. (Some truncations of
		// self-delimiting formats can silently decode fewer records, which
		// is acceptable; what matters is no panic and no wrong success with
		// full length.)
		for cut := 0; cut < len(enc); cut++ {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s panicked on truncated input: %v", pc.Name(), p)
					}
				}()
				_, _ = pc.DecodePage(schema, enc[:cut])
			}()
		}
	}
}

func TestNSEncodedSizeMatchesPaperFormula(t *testing.T) {
	// For CHAR(k), k < 256: encoded record size must be exactly ℓ + 1.
	k := 20
	schema := charSchema(k)
	ns := NullSuppression{}
	for _, s := range []string{"", "a", "abc", "abcdefghij", strings.Repeat("x", 20)} {
		rec, err := value.EncodeRecord(schema, value.Row{value.StringValue(s)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := len(s) + 1
		if got := ns.EncodedRecordSize(schema, rec); got != want {
			t.Errorf("EncodedRecordSize(%q) = %d, want %d", s, got, want)
		}
		enc, err := ns.EncodePage(schema, [][]byte{rec})
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != want {
			t.Errorf("EncodePage(%q) = %d bytes, want %d", s, len(enc), want)
		}
	}
}

func TestNSFigure1Example(t *testing.T) {
	// Paper Fig 1a: CHAR(20) value "abc" stores 3 bytes plus its length.
	schema := charSchema(20)
	rec, err := value.EncodeRecord(schema, value.Row{value.StringValue("abc")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NullSuppression{}.EncodePage(schema, [][]byte{rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 4 { // 1 length byte + "abc"
		t.Fatalf("Fig 1a example encodes to %d bytes, want 4", len(enc))
	}
	if len(rec) != 20 {
		t.Fatalf("uncompressed is %d bytes, want 20", len(rec))
	}
}

func TestPageDictSizeFormula(t *testing.T) {
	// r rows, m distinct values, CHAR(k): size = 2 + (2 + m*k + r*p).
	k := 16
	schema := charSchema(k)
	const r = 100
	const m = 7
	rows := make([]value.Row, r)
	for i := range rows {
		rows[i] = value.Row{value.StringValue(fmt.Sprintf("val-%d", i%m))}
	}
	recs := mkRecords(t, schema, rows)
	d := &PageDict{}
	enc, err := d.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	p := pointerSize(m)
	want := 2 + 2 + m*k + r*p
	if len(enc) != want {
		t.Fatalf("dict page size = %d, want %d", len(enc), want)
	}
	if d.lastDictEntries() != m {
		t.Fatalf("lastDictEntries = %d, want %d", d.lastDictEntries(), m)
	}
}

func TestPageDictFigure1Example(t *testing.T) {
	// Paper Fig 1b: 4 copies of "abcdefghij" collapse to one dictionary
	// entry plus 4 pointers.
	schema := charSchema(10)
	rows := make([]value.Row, 4)
	for i := range rows {
		rows[i] = value.Row{value.StringValue("abcdefghij")}
	}
	recs := mkRecords(t, schema, rows)
	enc, err := (&PageDict{}).EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	// 2 rows hdr + 2 dict hdr + 10 entry + 4×1 pointers = 18 < 40 raw.
	if len(enc) != 18 {
		t.Fatalf("Fig 1b example = %d bytes, want 18", len(enc))
	}
}

func TestRLECompressesSortedRuns(t *testing.T) {
	schema := charSchema(12)
	var rows []value.Row
	for v := 0; v < 5; v++ {
		for i := 0; i < 50; i++ {
			rows = append(rows, value.Row{value.StringValue(fmt.Sprintf("run-%d", v))})
		}
	}
	recs := mkRecords(t, schema, rows)
	enc, err := RLE{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	// 5 runs: 2 + 2 + 5*(2 + 1 + 5) = 44 bytes vs 3000 raw.
	if len(enc) >= 100 {
		t.Fatalf("RLE on 5 runs = %d bytes, expected tiny", len(enc))
	}
	dec, err := RLE{}.DecodePage(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !bytes.Equal(dec[i], recs[i]) {
			t.Fatalf("RLE round trip mismatch at %d", i)
		}
	}
}

func TestPrefixCompressesSharedPrefixes(t *testing.T) {
	schema := charSchema(24)
	var rows []value.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, value.Row{value.StringValue(fmt.Sprintf("customer-name-%05d", i))})
	}
	recs := mkRecords(t, schema, rows)
	enc, err := Prefix{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	nsEnc, err := NullSuppression{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(nsEnc) {
		t.Fatalf("prefix (%d) not smaller than NS (%d) on shared-prefix data", len(enc), len(nsEnc))
	}
}

func TestPickBestSelectsSmallest(t *testing.T) {
	schema := charSchema(16)
	// Heavy duplication: dictionary or RLE should win over NS.
	rows := make([]value.Row, 200)
	for i := range rows {
		rows[i] = value.Row{value.StringValue("constant-value")}
	}
	recs := mkRecords(t, schema, rows)
	pb := NewPageCompression()
	enc, err := pb.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	nsEnc, err := NullSuppression{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(nsEnc) {
		t.Fatalf("pickbest (%d) not better than NS (%d)", len(enc), len(nsEnc))
	}
	dec, err := pb.DecodePage(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(recs) || !bytes.Equal(dec[0], recs[0]) {
		t.Fatal("pickbest round trip failed")
	}
}

func TestGlobalDictSessionFormula(t *testing.T) {
	// n rows, d distinct, CHAR(k), fixed p: size ≈ n·p + d·k (+12 framing).
	k := 20
	schema := charSchema(k)
	const n = 1000
	const d = 50
	g := GlobalDict{PointerBytes: 4}
	sess, err := g.NewSession(schema)
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < n; i++ {
		rec, err := value.EncodeRecord(schema, value.Row{value.StringValue(fmt.Sprintf("v%02d", i%d))}, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	// Feed as two pages to exercise cross-page state.
	if err := sess.AddPage(recs[:400]); err != nil {
		t.Fatal(err)
	}
	if err := sess.AddPage(recs[400:]); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n*4+d*k) + 8 // + rows header + entries header
	if res.CompressedBytes != want {
		t.Fatalf("global dict size = %d, want %d", res.CompressedBytes, want)
	}
	if res.DictEntries != d {
		t.Fatalf("DictEntries = %d, want %d", res.DictEntries, d)
	}
	if res.UncompressedBytes != int64(n*k) {
		t.Fatalf("UncompressedBytes = %d", res.UncompressedBytes)
	}
	// CF must equal p/k + d/n analytically (up to framing).
	cf := res.CF()
	analytic := 4.0/float64(k) + float64(d)/float64(n)
	if diff := cf - analytic; diff < 0 || diff > 0.001 {
		t.Fatalf("CF = %v, analytic %v", cf, analytic)
	}
	// Round trip.
	dec, err := DecodeGlobal(g, schema, res.Encoded[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != n || !bytes.Equal(dec[0], recs[0]) || !bytes.Equal(dec[n-1], recs[n-1]) {
		t.Fatal("global dict round trip failed")
	}
}

func TestGlobalDictAutoPointer(t *testing.T) {
	schema := charSchema(8)
	g := GlobalDict{} // auto pointer sizing
	sess, err := g.NewSession(schema)
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < 300; i++ {
		rec, _ := value.EncodeRecord(schema, value.Row{value.StringValue(fmt.Sprintf("%03d", i))}, nil)
		recs = append(recs, rec)
	}
	if err := sess.AddPage(recs); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// 300 distinct entries → 2-byte pointers.
	want := int64(300*2+300*8) + 8
	if res.CompressedBytes != want {
		t.Fatalf("auto-p size = %d, want %d", res.CompressedBytes, want)
	}
	dec, err := DecodeGlobal(g, schema, res.Encoded[0])
	if err != nil || len(dec) != 300 {
		t.Fatalf("round trip: %d records, %v", len(dec), err)
	}
}

func TestPagedSessionAggregates(t *testing.T) {
	schema := charSchema(10)
	codec := Paged{PC: NullSuppression{}}
	sess, err := codec.NewSession(schema)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := value.EncodeRecord(schema, value.Row{value.StringValue("abc")}, nil)
	for p := 0; p < 3; p++ {
		if err := sess.AddPage([][]byte{rec, rec}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 3 || res.Rows != 6 {
		t.Fatalf("pages=%d rows=%d", res.Pages, res.Rows)
	}
	if res.UncompressedBytes != 60 {
		t.Fatalf("uncompressed = %d", res.UncompressedBytes)
	}
	if res.CompressedBytes != 6*4 { // each "abc" → 4 bytes
		t.Fatalf("compressed = %d", res.CompressedBytes)
	}
	if cf := res.CF(); cf != 0.4 {
		t.Fatalf("CF = %v, want 0.4", cf)
	}
	if _, err := sess.Finish(); err == nil {
		t.Fatal("double finish accepted")
	}
	if err := sess.AddPage(nil); err == nil {
		t.Fatal("AddPage after finish accepted")
	}
}

func TestResultCFEmpty(t *testing.T) {
	if cf := (Result{}).CF(); cf != 1 {
		t.Fatalf("empty CF = %v, want 1", cf)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"nullsuppression", "pagedict", "pagedict+ns", "prefix", "rle", "page", "globaldict", "globaldict-p4"} {
		c, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if c.Name() == "" {
			t.Fatalf("codec %q has empty name", name)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry has %d codecs: %v", len(names), names)
	}
}

// TestPropertyAllCodecsRoundTrip fuzzes random pages through every codec.
func TestPropertyAllCodecsRoundTrip(t *testing.T) {
	schema := value.MustSchema(
		value.Column{Name: "s", Type: value.Char(12)},
		value.Column{Name: "n", Type: value.Int32()},
	)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		// Skewed rows: duplicates likely, lengths vary.
		n := r.Intn(150)
		rows := make([]value.Row, n)
		for i := range rows {
			v := fmt.Sprintf("%0*d", 1+r.Intn(10), r.Intn(20))
			rows[i] = value.Row{value.StringValue(v), value.IntValue(int32(r.Intn(1000) - 500))}
		}
		recs := make([][]byte, n)
		for i, row := range rows {
			rec, err := value.EncodeRecord(schema, row, nil)
			if err != nil {
				return false
			}
			recs[i] = rec
		}
		for _, pc := range pageCodecs {
			enc, err := pc.EncodePage(schema, recs)
			if err != nil {
				t.Logf("%s encode: %v", pc.Name(), err)
				return false
			}
			dec, err := pc.DecodePage(schema, enc)
			if err != nil {
				t.Logf("%s decode: %v", pc.Name(), err)
				return false
			}
			if len(dec) != len(recs) {
				t.Logf("%s count: %d vs %d", pc.Name(), len(dec), len(recs))
				return false
			}
			for i := range recs {
				if !bytes.Equal(dec[i], recs[i]) {
					t.Logf("%s record %d mismatch", pc.Name(), i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMeasureRecords(t *testing.T) {
	schema := charSchema(20)
	var recs [][]byte
	for i := 0; i < 500; i++ {
		rec, _ := value.EncodeRecord(schema, value.Row{value.StringValue("abc")}, nil)
		recs = append(recs, rec)
	}
	codec, err := Lookup("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureRecords(schema, codec, recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 5 || res.Rows != 500 {
		t.Fatalf("pages=%d rows=%d", res.Pages, res.Rows)
	}
	// Every row is "abc" in CHAR(20): CF = 4/20 exactly.
	if cf := res.CF(); cf != 0.2 {
		t.Fatalf("CF = %v, want 0.2", cf)
	}
	if _, err := MeasureRecords(schema, codec, recs, 0); err == nil {
		t.Fatal("rowsPerPage=0 accepted")
	}
}

func TestRowsPerPage(t *testing.T) {
	schema := charSchema(20)
	n := RowsPerPage(schema, 8192)
	if n != (8192-24)/24 {
		t.Fatalf("RowsPerPage = %d", n)
	}
	// Degenerate: record wider than page still returns 1.
	wide := charSchema(4000)
	if RowsPerPage(wide, 512) != 1 {
		t.Fatal("wide rows per page != 1")
	}
}

func TestPointerSizeBoundaries(t *testing.T) {
	cases := []struct{ m, want int }{
		{1, 1}, {256, 1}, {257, 2}, {1 << 16, 2}, {1<<16 + 1, 3}, {1 << 24, 3}, {1<<24 + 1, 4},
	}
	for _, c := range cases {
		if got := pointerSize(c.m); got != c.want {
			t.Errorf("pointerSize(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestLenHeaderSize(t *testing.T) {
	if lenHeaderSize(255) != 1 || lenHeaderSize(20) != 1 {
		t.Error("small k should use 1 header byte")
	}
	if lenHeaderSize(256) != 2 || lenHeaderSize(4000) != 2 {
		t.Error("large k should use 2 header bytes")
	}
}

func BenchmarkNSEncode(b *testing.B) {
	benchmarkEncode(b, NullSuppression{})
}

func BenchmarkPageDictEncode(b *testing.B) {
	benchmarkEncode(b, &PageDict{})
}

func BenchmarkPageCompressionEncode(b *testing.B) {
	benchmarkEncode(b, NewPageCompression())
}

func benchmarkEncode(b *testing.B, pc PageCodec) {
	schema := charSchema(20)
	r := rng.New(1)
	rows := make([]value.Row, 300)
	for i := range rows {
		rows[i] = value.Row{value.StringValue(fmt.Sprintf("value-%d", r.Intn(40)))}
	}
	recs := make([][]byte, len(rows))
	for i, row := range rows {
		rec, err := value.EncodeRecord(schema, row, nil)
		if err != nil {
			b.Fatal(err)
		}
		recs[i] = rec
	}
	b.SetBytes(int64(len(recs)) * int64(schema.RowWidth()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.EncodePage(schema, recs); err != nil {
			b.Fatal(err)
		}
	}
}
