package compress

import (
	"encoding/binary"

	"samplecf/internal/value"
)

// RLE is per-page, per-column run-length encoding: consecutive equal values
// collapse into (count, value) pairs. Sorted leaf pages of low-cardinality
// indexes — where every distinct value forms one long run — are its best
// case; on unsorted or high-cardinality data it degenerates to NS plus a
// 2-byte run header per value.
//
// Encoded page layout:
//
//	[rows uint16]
//	per column: [runs uint16] then per run [count uint16][len h][bytes]
type RLE struct{}

// Name implements PageCodec.
func (RLE) Name() string { return "rle" }

// EncodePage implements PageCodec.
func (RLE) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	if err := checkRecords(schema, records); err != nil {
		return nil, err
	}
	if len(records) > maxPageRows {
		return nil, ErrCorrupt
	}
	cols := columnOffsets(schema)
	var out []byte
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(records)))
	out = append(out, hdr[:]...)
	for c := range cols {
		t := schema.Column(c).Type
		h := lenHeaderSize(t.FixedWidth())
		// Collect runs.
		type run struct {
			val   []byte
			count int
		}
		var runs []run
		for _, rec := range records {
			v := rec[cols[c][0]:cols[c][1]]
			if len(runs) > 0 && string(runs[len(runs)-1].val) == string(v) && runs[len(runs)-1].count < maxPageRows {
				runs[len(runs)-1].count++
			} else {
				runs = append(runs, run{val: v, count: 1})
			}
		}
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(runs)))
		out = append(out, hdr[:]...)
		for _, r := range runs {
			binary.LittleEndian.PutUint16(hdr[:], uint16(r.count))
			out = append(out, hdr[:]...)
			sup := suppressColumn(t, r.val)
			out = putLen(out, len(sup), h)
			out = append(out, sup...)
		}
	}
	return out, nil
}

// DecodePage implements PageCodec.
func (RLE) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	if len(data) < 2 {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	cols := columnOffsets(schema)
	records := make([][]byte, rows)
	for i := range records {
		records[i] = make([]byte, schema.RowWidth())
	}
	for c := range cols {
		t := schema.Column(c).Type
		w := t.FixedWidth()
		h := lenHeaderSize(w)
		if len(data) < 2 {
			return nil, ErrCorrupt
		}
		nRuns := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		row := 0
		for r := 0; r < nRuns; r++ {
			if len(data) < 2 {
				return nil, ErrCorrupt
			}
			count := int(binary.LittleEndian.Uint16(data))
			data = data[2:]
			l, rest, err := getLen(data, h)
			if err != nil {
				return nil, err
			}
			if l > w || len(rest) < l {
				return nil, ErrCorrupt
			}
			full := make([]byte, w)
			expandInto(t, rest[:l], full)
			data = rest[l:]
			for i := 0; i < count; i++ {
				if row >= rows {
					return nil, ErrCorrupt
				}
				copy(records[row][cols[c][0]:cols[c][1]], full)
				row++
			}
		}
		if row != rows {
			return nil, ErrCorrupt
		}
	}
	if len(data) != 0 {
		return nil, ErrCorrupt
	}
	return records, nil
}

func init() {
	Register("rle", func() Codec { return Paged{PC: RLE{}} })
}
