package compress

import (
	"encoding/binary"

	"samplecf/internal/value"
)

// RLE is per-page, per-column run-length encoding: consecutive equal values
// collapse into (count, value) pairs. Sorted leaf pages of low-cardinality
// indexes — where every distinct value forms one long run — are its best
// case; on unsorted or high-cardinality data it degenerates to NS plus a
// 2-byte run header per value.
//
// Encoded page layout:
//
//	[rows uint16]
//	per column: [runs uint16] then per run [count uint16][len h][bytes]
type RLE struct{}

// Name implements PageCodec.
func (RLE) Name() string { return "rle" }

// EncodePage implements PageCodec.
func (r RLE) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	out, _, err := r.AppendPage(schema, records, nil)
	return out, err
}

// AppendPage implements PageAppender. Runs are emitted as they close — no
// intermediate run list — with the per-column run count back-patched into
// its reserved header slot once the column is done.
func (RLE) AppendPage(schema *value.Schema, records [][]byte, dst []byte) ([]byte, int64, error) {
	if err := checkRecords(schema, records); err != nil {
		return dst, 0, err
	}
	if len(records) > maxPageRows {
		return dst, 0, ErrCorrupt
	}
	cols := columnOffsets(schema)
	out := dst
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(records)))
	out = append(out, hdr[:]...)
	for c := range cols {
		t := schema.Column(c).Type
		h := lenHeaderSize(t.FixedWidth())
		// Reserve the run-count slot; patch it when the column closes.
		runsAt := len(out)
		out = append(out, 0, 0)
		nRuns := 0
		emit := func(val []byte, count int) {
			binary.LittleEndian.PutUint16(hdr[:], uint16(count))
			out = append(out, hdr[:]...)
			sup := suppressColumn(t, val)
			out = putLen(out, len(sup), h)
			out = append(out, sup...)
			nRuns++
		}
		var cur []byte
		count := 0
		for _, rec := range records {
			v := rec[cols[c][0]:cols[c][1]]
			if count > 0 && count < maxPageRows && string(cur) == string(v) {
				count++
				continue
			}
			if count > 0 {
				emit(cur, count)
			}
			cur, count = v, 1
		}
		if count > 0 {
			emit(cur, count)
		}
		binary.LittleEndian.PutUint16(out[runsAt:], uint16(nRuns))
	}
	return out, 0, nil
}

// DecodePage implements PageCodec.
func (RLE) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	if len(data) < 2 {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	cols := columnOffsets(schema)
	records := make([][]byte, rows)
	for i := range records {
		records[i] = make([]byte, schema.RowWidth())
	}
	for c := range cols {
		t := schema.Column(c).Type
		w := t.FixedWidth()
		h := lenHeaderSize(w)
		if len(data) < 2 {
			return nil, ErrCorrupt
		}
		nRuns := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		row := 0
		for r := 0; r < nRuns; r++ {
			if len(data) < 2 {
				return nil, ErrCorrupt
			}
			count := int(binary.LittleEndian.Uint16(data))
			data = data[2:]
			l, rest, err := getLen(data, h)
			if err != nil {
				return nil, err
			}
			if l > w || len(rest) < l {
				return nil, ErrCorrupt
			}
			full := make([]byte, w)
			expandInto(t, rest[:l], full)
			data = rest[l:]
			for i := 0; i < count; i++ {
				if row >= rows {
					return nil, ErrCorrupt
				}
				copy(records[row][cols[c][0]:cols[c][1]], full)
				row++
			}
		}
		if row != rows {
			return nil, ErrCorrupt
		}
	}
	if len(data) != 0 {
		return nil, ErrCorrupt
	}
	return records, nil
}

func init() {
	Register("rle", func() Codec { return Paged{PC: RLE{}} })
}
