package compress

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"slices"
	"sync"

	"samplecf/internal/value"
)

// Huffman is per-page byte-level entropy coding with a canonical Huffman
// code built from the page's own byte histogram. It represents the
// "statistical" codec family (as opposed to the structural NS/dictionary
// families the paper analyzes) and exists to stress the estimator's
// codec-agnosticism: SampleCF never looks inside it.
//
// Records are null-suppressed first (entropy coding k-padding is wasteful),
// then the concatenated bytes are Huffman coded. Encoded page layout:
//
//	[rows uint16]
//	per row: [nsLen h-bytes]              (null-suppressed record framing)
//	[codeLens: 256 × uint8]               (canonical code, 0 = absent)
//	[bitstream length uint32][bitstream]
type Huffman struct{}

// Name implements PageCodec.
func (Huffman) Name() string { return "huffman" }

// maxCodeLen caps code lengths so lengths fit a byte and decoding tables
// stay small; 32 is unreachable for 64 Ki inputs but guards degenerate
// histograms.
const maxCodeLen = 32

// EncodePage implements PageCodec.
func (hf Huffman) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	out, _, err := hf.AppendPage(schema, records, nil)
	return out, err
}

// huffScratch pools the suppressed byte stream and bit buffer one page
// encode needs.
type huffScratch struct {
	stream []byte
	bits   []byte
}

var huffScratchPool = sync.Pool{New: func() any { return &huffScratch{} }}

// AppendPage implements PageAppender.
func (Huffman) AppendPage(schema *value.Schema, records [][]byte, dst []byte) ([]byte, int64, error) {
	if err := checkRecords(schema, records); err != nil {
		return dst, 0, err
	}
	if len(records) > maxPageRows {
		return dst, 0, ErrCorrupt
	}
	cols := columnOffsets(schema)
	out := dst
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(records)))
	out = append(out, hdr[:]...)

	sc := huffScratchPool.Get().(*huffScratch)
	defer huffScratchPool.Put(sc)

	// Null-suppress every record; emit per-row framing; gather the byte
	// stream to be entropy coded.
	stream := sc.stream[:0]
	for _, rec := range records {
		rowStart := len(stream)
		for c := range cols {
			t := schema.Column(c).Type
			sup := suppressColumn(t, rec[cols[c][0]:cols[c][1]])
			// Column framing within the row: [len h][bytes], so decode can
			// re-split columns.
			h := lenHeaderSize(t.FixedWidth())
			stream = putLen(stream, len(sup), h)
			stream = append(stream, sup...)
		}
		rowLen := len(stream) - rowStart
		if rowLen > 1<<16-1 {
			// 2-byte row framing: schemas wider than 64 KiB per suppressed
			// row (16+ CHAR(4000) columns) are beyond this codec.
			sc.stream = stream
			return dst, 0, fmt.Errorf("compress: huffman row of %d bytes exceeds framing limit", rowLen)
		}
		out = putLen(out, rowLen, 2)
	}
	sc.stream = stream

	// Histogram → canonical code lengths.
	var freq [256]int64
	for _, b := range stream {
		freq[b]++
	}
	lens := huffmanCodeLengths(freq[:])
	out = append(out, lens...)

	// Assign canonical codes and emit the bitstream.
	codes := canonicalCodes(lens)
	bw := bitWriter{buf: sc.bits[:0]}
	for _, b := range stream {
		bw.write(codes[b].bits, codes[b].len)
	}
	bits := bw.finish()
	var l4 [4]byte
	binary.LittleEndian.PutUint32(l4[:], uint32(len(stream)))
	out = append(out, l4[:]...)
	out = append(out, bits...)
	sc.bits = bits
	return out, 0, nil
}

// DecodePage implements PageCodec.
func (Huffman) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	if len(data) < 2 {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	rowLens := make([]int, rows)
	for i := 0; i < rows; i++ {
		l, rest, err := getLen(data, 2)
		if err != nil {
			return nil, err
		}
		rowLens[i] = l
		data = rest
	}
	if len(data) < 256+4 {
		return nil, ErrCorrupt
	}
	lens := data[:256]
	data = data[256:]
	streamLen := int(binary.LittleEndian.Uint32(data))
	data = data[4:]

	stream, err := huffmanDecode(lens, data, streamLen)
	if err != nil {
		return nil, err
	}

	cols := columnOffsets(schema)
	records := make([][]byte, rows)
	off := 0
	for i := 0; i < rows; i++ {
		if off+rowLens[i] > len(stream) {
			return nil, ErrCorrupt
		}
		row := stream[off : off+rowLens[i]]
		off += rowLens[i]
		rec := make([]byte, schema.RowWidth())
		for c := range cols {
			t := schema.Column(c).Type
			h := lenHeaderSize(t.FixedWidth())
			l, rest, err := getLen(row, h)
			if err != nil {
				return nil, err
			}
			if l > t.FixedWidth() || len(rest) < l {
				return nil, ErrCorrupt
			}
			expandInto(t, rest[:l], rec[cols[c][0]:cols[c][1]])
			row = rest[l:]
		}
		if len(row) != 0 {
			return nil, ErrCorrupt
		}
		records[i] = rec
	}
	return records, nil
}

// --- canonical Huffman machinery ------------------------------------------------

type hNode struct {
	freq        int64
	sym         int // 0..255, or -1 for internal
	left, right *hNode
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h hHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x any)   { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() any     { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

// huffmanCodeLengths returns one code length per byte value (0 = unused).
func huffmanCodeLengths(freq []int64) []byte {
	var hp hHeap
	for sym, f := range freq {
		if f > 0 {
			hp = append(hp, &hNode{freq: f, sym: sym})
		}
	}
	lens := make([]byte, 256)
	switch len(hp) {
	case 0:
		return lens
	case 1:
		lens[hp[0].sym] = 1 // degenerate single-symbol alphabet
		return lens
	}
	heap.Init(&hp)
	for hp.Len() > 1 {
		a := heap.Pop(&hp).(*hNode)
		b := heap.Pop(&hp).(*hNode)
		heap.Push(&hp, &hNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	root := hp[0]
	var walk func(n *hNode, depth byte)
	walk = func(n *hNode, depth byte) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			if depth > maxCodeLen {
				depth = maxCodeLen // freq skew beyond 2^32 inputs: unreachable
			}
			lens[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lens
}

type hCode struct {
	bits uint64
	len  byte
}

// canonicalCodes assigns canonical codes from lengths (shorter codes first,
// ties by symbol value).
func canonicalCodes(lens []byte) [256]hCode {
	type sl struct {
		sym int
		l   byte
	}
	var syms []sl
	for s, l := range lens {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	slices.SortFunc(syms, func(a, b sl) int {
		if a.l != b.l {
			return int(a.l) - int(b.l)
		}
		return a.sym - b.sym
	})
	var codes [256]hCode
	code := uint64(0)
	prevLen := byte(0)
	for _, s := range syms {
		code <<= (s.l - prevLen)
		codes[s.sym] = hCode{bits: code, len: s.l}
		code++
		prevLen = s.l
	}
	return codes
}

// huffmanDecode walks the canonical code bit by bit (simple and safe; page
// sizes keep inputs small enough that table-driven decoding is unnecessary).
func huffmanDecode(lens []byte, bits []byte, streamLen int) ([]byte, error) {
	codes := canonicalCodes(lens)
	// Build decode map: (len, code) -> symbol.
	type key struct {
		l    byte
		bits uint64
	}
	dec := make(map[key]byte)
	for s := 0; s < 256; s++ {
		if lens[s] > 0 {
			dec[key{codes[s].len, codes[s].bits}] = byte(s)
		}
	}
	out := make([]byte, 0, streamLen)
	br := bitReader{data: bits}
	for len(out) < streamLen {
		var cur uint64
		var l byte
		for {
			b, ok := br.read()
			if !ok {
				return nil, ErrCorrupt
			}
			cur = cur<<1 | uint64(b)
			l++
			if l > maxCodeLen {
				return nil, ErrCorrupt
			}
			if sym, hit := dec[key{l, cur}]; hit {
				out = append(out, sym)
				break
			}
		}
	}
	return out, nil
}

// bitWriter packs MSB-first bits.
type bitWriter struct {
	buf []byte
	cur byte
	n   byte
}

func (w *bitWriter) write(bits uint64, l byte) {
	for i := int(l) - 1; i >= 0; i-- {
		w.cur = w.cur<<1 | byte((bits>>uint(i))&1)
		w.n++
		if w.n == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.n = 0, 0
		}
	}
}

func (w *bitWriter) finish() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.n))
		w.cur, w.n = 0, 0
	}
	return w.buf
}

// bitReader reads MSB-first bits.
type bitReader struct {
	data []byte
	pos  int
	bit  byte
}

func (r *bitReader) read() (byte, bool) {
	if r.pos >= len(r.data) {
		return 0, false
	}
	b := (r.data[r.pos] >> (7 - r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, true
}

func init() {
	Register("huffman", func() Codec { return Paged{PC: Huffman{}} })
}
