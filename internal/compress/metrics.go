package compress

import "samplecf/internal/obs"

// Process-wide measurement tallies on the default obs registry, labeled by
// codec family — the codec name with parameter suffixes stripped, so label
// cardinality stays bounded by the codec catalog, not its configurations.
var (
	measureBytesIn = obs.Default().CounterVec(
		"samplecf_compress_uncompressed_bytes_total",
		"Bytes fed into compression measurement, by codec family.", "codec")
	measureBytesOut = obs.Default().CounterVec(
		"samplecf_compress_compressed_bytes_total",
		"Bytes produced by compression measurement, by codec family.", "codec")
	measurePages = obs.Default().CounterVec(
		"samplecf_compress_pages_total",
		"Pages compressed during measurement, by codec family.", "codec")
)

// familyOf strips a codec name to its family: parameterized names like
// "pagedict+ns" or "globaldict(p=2)" collapse to "pagedict"/"globaldict".
// Pure slicing — no allocation on the measurement hot path.
func familyOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '(' || name[i] == '+' {
			return name[:i]
		}
	}
	return name
}

// recordMeasure tallies one finished measurement onto the family counters:
// three atomic adds after two map reads, once per measured index — never
// per page or per row.
func recordMeasure(codec Codec, res Result) {
	f := familyOf(codec.Name())
	measureBytesIn.With(f).Add(uint64(res.UncompressedBytes))
	measureBytesOut.With(f).Add(uint64(res.CompressedBytes))
	measurePages.With(f).Add(uint64(res.Pages))
}
