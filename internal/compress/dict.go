package compress

import (
	"encoding/binary"
	"fmt"
	"sync"

	"samplecf/internal/value"
)

// PageDict is dictionary compression as commercial systems apply it
// (§II-A, Fig. 1b): per page and per column, distinct values are stored once
// in a dictionary that is in-lined in the page (no extra I/O to resolve
// pointers), and each row stores a small pointer instead of the value.
//
// Encoded page layout:
//
//	[rows uint16]
//	per column:
//	  [dictEntries uint16]
//	  dictionary entries (fixed column width each, or length-prefixed
//	    null-suppressed bytes when EntryNS is set)
//	  row pointers (rows × pointerSize(dictEntries) bytes)
//
// With fixed-width entries the compressed size of one page is exactly
// Σ_cols (2 + m_c·k_c + rows·p_c) + 2, so summing over pages reproduces the
// paper's general dictionary formula n·p + Σ_{v∈D} Pg(v)·k + overhead.
type PageDict struct {
	// EntryNS stores dictionary entries null-suppressed instead of at fixed
	// column width — the ablation for "row-compress the dictionary too"
	// (SQL Server PAGE compression does this).
	EntryNS bool
	// BitPack stores row pointers in ⌈log₂ m⌉ BITS instead of whole bytes —
	// the pointer-granularity ablation DESIGN.md calls out. The paper's p is
	// byte-granular ("the size of the pointer in bytes"); bit packing shows
	// what that rounding costs.
	BitPack bool

	lastEntries int64
}

// Name implements PageCodec.
func (d *PageDict) Name() string {
	name := "pagedict"
	if d.EntryNS {
		name += "+ns"
	}
	if d.BitPack {
		name += "+bitpack"
	}
	return name
}

// maxPageRows bounds rows per encoded page (uint16 framing).
const maxPageRows = 1<<16 - 1

// EncodePage implements PageCodec.
func (d *PageDict) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	out, entries, err := d.AppendPage(schema, records, nil)
	if err != nil {
		return nil, err
	}
	d.lastEntries = entries
	return out, nil
}

// dictScratch is the pooled per-page working set of AppendPage: the
// value→slot map, the first-appearance entry list, the per-row pointers,
// and the bit-pack buffer. One scratch serves one page encode; the pool
// keeps the steady-state encode loop allocation-free apart from the map's
// interned entry keys.
type dictScratch struct {
	idx     map[string]int
	entries [][]byte
	ptrs    []int
	bits    []byte
}

var dictScratchPool = sync.Pool{
	New: func() any { return &dictScratch{idx: make(map[string]int, 256)} },
}

// AppendPage implements PageAppender.
func (d *PageDict) AppendPage(schema *value.Schema, records [][]byte, dst []byte) ([]byte, int64, error) {
	if err := checkRecords(schema, records); err != nil {
		return dst, 0, err
	}
	if len(records) > maxPageRows {
		return dst, 0, fmt.Errorf("compress: %d records exceed page framing limit %d", len(records), maxPageRows)
	}
	cols := columnOffsets(schema)
	out := dst
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(records)))
	out = append(out, hdr[:]...)

	sc := dictScratchPool.Get().(*dictScratch)
	defer dictScratchPool.Put(sc)
	if cap(sc.ptrs) < len(records) {
		sc.ptrs = make([]int, len(records))
	}
	ptrs := sc.ptrs[:len(records)]

	var dictEntries int64
	for c := range cols {
		t := schema.Column(c).Type
		// First pass: build the per-page, per-column dictionary in
		// first-appearance order.
		clear(sc.idx)
		entries := sc.entries[:0]
		for i, rec := range records {
			v := rec[cols[c][0]:cols[c][1]]
			j, ok := sc.idx[string(v)]
			if !ok {
				j = len(entries)
				sc.idx[string(v)] = j
				entries = append(entries, v)
			}
			ptrs[i] = j
		}
		sc.entries = entries[:0]
		if len(entries) > maxPageRows {
			return dst, 0, fmt.Errorf("compress: column %d has %d distinct values on one page", c, len(entries))
		}
		dictEntries += int64(len(entries))
		// Emit dictionary.
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(entries)))
		out = append(out, hdr[:]...)
		for _, e := range entries {
			if d.EntryNS {
				sup := suppressColumn(t, e)
				out = putLen(out, len(sup), lenHeaderSize(t.FixedWidth()))
				out = append(out, sup...)
			} else {
				out = append(out, e...)
			}
		}
		// Emit pointers: byte-aligned by default (the paper's model),
		// bit-packed under the ablation flag.
		if d.BitPack {
			w := bitWidth(len(entries))
			bw := bitWriter{buf: sc.bits[:0]}
			for _, j := range ptrs {
				bw.write(uint64(j), w)
			}
			packed := bw.finish()
			out = append(out, packed...)
			sc.bits = packed
		} else {
			p := pointerSize(len(entries))
			for _, j := range ptrs {
				out = putPointer(out, j, p)
			}
		}
	}
	return out, dictEntries, nil
}

// bitWidth returns ⌈log₂ m⌉ clamped to at least 1.
func bitWidth(m int) byte {
	w := byte(1)
	for 1<<w < m {
		w++
	}
	return w
}

// DecodePage implements PageCodec.
func (d *PageDict) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	if len(data) < 2 {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	cols := columnOffsets(schema)
	records := make([][]byte, rows)
	for i := range records {
		records[i] = make([]byte, schema.RowWidth())
	}
	for c := range cols {
		t := schema.Column(c).Type
		w := t.FixedWidth()
		if len(data) < 2 {
			return nil, ErrCorrupt
		}
		m := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		entries := make([][]byte, m)
		for j := 0; j < m; j++ {
			if d.EntryNS {
				l, rest, err := getLen(data, lenHeaderSize(w))
				if err != nil {
					return nil, err
				}
				if l > w || len(rest) < l {
					return nil, ErrCorrupt
				}
				e := make([]byte, w)
				expandInto(t, rest[:l], e)
				entries[j] = e
				data = rest[l:]
			} else {
				if len(data) < w {
					return nil, ErrCorrupt
				}
				entries[j] = data[:w]
				data = data[w:]
			}
		}
		if d.BitPack {
			w := bitWidth(m)
			need := (rows*int(w) + 7) / 8
			if len(data) < need {
				return nil, ErrCorrupt
			}
			br := bitReader{data: data[:need]}
			for i := 0; i < rows; i++ {
				j := 0
				for b := byte(0); b < w; b++ {
					bit, ok := br.read()
					if !ok {
						return nil, ErrCorrupt
					}
					j = j<<1 | int(bit)
				}
				if j >= m {
					return nil, ErrCorrupt
				}
				copy(records[i][cols[c][0]:cols[c][1]], entries[j])
			}
			data = data[need:]
		} else {
			p := pointerSize(m)
			for i := 0; i < rows; i++ {
				j, rest, err := getPointer(data, p)
				if err != nil {
					return nil, err
				}
				if j >= m {
					return nil, ErrCorrupt
				}
				copy(records[i][cols[c][0]:cols[c][1]], entries[j])
				data = rest
			}
		}
	}
	if len(data) != 0 {
		return nil, ErrCorrupt
	}
	return records, nil
}

// lastDictEntries implements dictEntryCounter: the number of dictionary
// entries the most recent EncodePage stored (summed over columns). The paged
// session accumulates this into Result.DictEntries = Σ Pg(v).
func (d *PageDict) lastDictEntries() int64 { return d.lastEntries }

func init() {
	Register("pagedict", func() Codec { return Paged{PC: &PageDict{}} })
	Register("pagedict+ns", func() Codec { return Paged{PC: &PageDict{EntryNS: true}} })
	Register("pagedict+bitpack", func() Codec { return Paged{PC: &PageDict{BitPack: true}} })
}
