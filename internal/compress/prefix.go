package compress

import (
	"encoding/binary"

	"samplecf/internal/value"
)

// Prefix implements per-page, per-column common-prefix compression, the
// first stage of SQL Server-style PAGE compression: an anchor value is
// stored once per column, and every row stores only how many leading bytes
// it shares with the anchor plus its null-suppressed remainder. Sorted index
// leaves — where neighboring keys share long prefixes — are its best case.
//
// Encoded page layout:
//
//	[rows uint16]
//	per column:
//	  [anchorLen h][anchor bytes]               (null-suppressed anchor)
//	  per row: [sharedLen h][remLen h][remainder bytes]
type Prefix struct{}

// Name implements PageCodec.
func (Prefix) Name() string { return "prefix" }

// EncodePage implements PageCodec.
func (p Prefix) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	out, _, err := p.AppendPage(schema, records, nil)
	return out, err
}

// AppendPage implements PageAppender.
func (Prefix) AppendPage(schema *value.Schema, records [][]byte, dst []byte) ([]byte, int64, error) {
	if err := checkRecords(schema, records); err != nil {
		return dst, 0, err
	}
	if len(records) > maxPageRows {
		return dst, 0, ErrCorrupt
	}
	cols := columnOffsets(schema)
	out := dst
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(records)))
	out = append(out, hdr[:]...)
	for c := range cols {
		t := schema.Column(c).Type
		h := lenHeaderSize(t.FixedWidth())
		// Anchor: the first row's suppressed value (real engines pick an
		// anchor heuristically; first-value is deterministic and close).
		var anchor []byte
		if len(records) > 0 {
			anchor = suppressColumn(t, records[0][cols[c][0]:cols[c][1]])
		}
		out = putLen(out, len(anchor), h)
		out = append(out, anchor...)
		for _, rec := range records {
			v := suppressColumn(t, rec[cols[c][0]:cols[c][1]])
			shared := commonPrefixLen(anchor, v)
			out = putLen(out, shared, h)
			out = putLen(out, len(v)-shared, h)
			out = append(out, v[shared:]...)
		}
	}
	return out, 0, nil
}

// DecodePage implements PageCodec.
func (Prefix) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	if len(data) < 2 {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	cols := columnOffsets(schema)
	records := make([][]byte, rows)
	for i := range records {
		records[i] = make([]byte, schema.RowWidth())
	}
	for c := range cols {
		t := schema.Column(c).Type
		w := t.FixedWidth()
		h := lenHeaderSize(w)
		alen, rest, err := getLen(data, h)
		if err != nil {
			return nil, err
		}
		if alen > w || len(rest) < alen {
			return nil, ErrCorrupt
		}
		anchor := rest[:alen]
		data = rest[alen:]
		for i := 0; i < rows; i++ {
			shared, rest, err := getLen(data, h)
			if err != nil {
				return nil, err
			}
			remLen, rest, err := getLen(rest, h)
			if err != nil {
				return nil, err
			}
			if shared > len(anchor) || shared+remLen > w || len(rest) < remLen {
				return nil, ErrCorrupt
			}
			full := make([]byte, 0, shared+remLen)
			full = append(full, anchor[:shared]...)
			full = append(full, rest[:remLen]...)
			expandInto(t, full, records[i][cols[c][0]:cols[c][1]])
			data = rest[remLen:]
		}
	}
	if len(data) != 0 {
		return nil, ErrCorrupt
	}
	return records, nil
}

// commonPrefixLen returns the length of the longest common prefix of a and b.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func init() {
	Register("prefix", func() Codec { return Paged{PC: Prefix{}} })
}
