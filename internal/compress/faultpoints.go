package compress

import "samplecf/internal/faults"

// encodePoint is the codec-encode injection point: consulted once per page
// on every MeasureArena route (parallel, sequential, and generic-session),
// so a chaos schedule can fail or panic "the Nth page encode" whether the
// codec fans out or not. Disarmed cost: one atomic load per page.
var encodePoint = faults.Register("compress.encode")
