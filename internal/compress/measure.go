package compress

import (
	"fmt"
	"sync"

	"samplecf/internal/btree"
	"samplecf/internal/faults"
	"samplecf/internal/page"
	"samplecf/internal/value"
	"samplecf/internal/workgroup"
)

// MeasureTree compresses the leaf level of an index with codec and returns
// the whole-index Result, from which CF follows. The index must store, as
// each leaf entry's PAYLOAD, the fixed-width encoding of the keySchema row
// (value.EncodeRecord output) — the actual index record; the memcomparable
// search key is excluded from CF, matching the paper's model in which index
// rows are the column values themselves.
func MeasureTree(t *btree.Tree, keySchema *value.Schema, codec Codec) (Result, error) {
	sess, err := codec.NewSession(keySchema)
	if err != nil {
		return Result{}, err
	}
	err = t.LeafPages(func(_ uint32, p *page.Page) error {
		_, payloads, err := btree.LeafEntries(p)
		if err != nil {
			return err
		}
		return sess.AddPage(payloads)
	})
	if err != nil {
		return Result{}, fmt.Errorf("compress: measure tree: %w", err)
	}
	res, err := sess.Finish()
	if err == nil {
		recordMeasure(codec, res)
	}
	return res, err
}

// MeasureRecords chunks fixed-width records into synthetic pages of
// rowsPerPage and compresses them with codec. It is the array-backed
// fast path used by estimators that skip materializing a B+-tree.
func MeasureRecords(keySchema *value.Schema, codec Codec, records [][]byte, rowsPerPage int) (Result, error) {
	if rowsPerPage <= 0 {
		return Result{}, fmt.Errorf("compress: rowsPerPage %d must be positive", rowsPerPage)
	}
	sess, err := codec.NewSession(keySchema)
	if err != nil {
		return Result{}, err
	}
	for start := 0; start < len(records); start += rowsPerPage {
		end := start + rowsPerPage
		if end > len(records) {
			end = len(records)
		}
		if err := sess.AddPage(records[start:end]); err != nil {
			return Result{}, err
		}
	}
	return sess.Finish()
}

// pageViewPool recycles the [][]byte record views MeasureArena builds per
// page: rowsPerPage slice headers pointing into the arena, dead once the
// page is encoded.
var pageViewPool = sync.Pool{
	New: func() any { v := make([][]byte, 0, 512); return &v },
}

// measureWorkers returns the page fan-out width for a page count: the
// shared bounded worker-group discipline (workgroup.Limit) that every
// per-operation parallel stage — page compression here, bucket recursion
// in sortkeys, sharded ground-truth scans — follows, because the engine
// already parallelizes across candidates.
func measureWorkers(pages int) int {
	return workgroup.Limit(pages)
}

// MeasureArena is the estimation hot path: it compresses the rowsPerPage-
// chunked records of an arena — visited in perm order (nil = arena order) —
// and returns the size tally only (Result.Encoded stays nil). Per-page
// output goes to pooled scratch that dies with the page, and for stateless
// page codecs (Paged + PageAppender) the pages are fanned out across a
// bounded worker group; page sizes are summed, so the result is
// deterministic regardless of worker interleaving and byte-identical to the
// sequential session path.
func MeasureArena(keySchema *value.Schema, codec Codec, ar *value.RecordArena, perm []int32, rowsPerPage int) (res Result, err error) {
	// A panicking codec poisons one measurement, not the process: the
	// estimation path promises per-candidate error isolation, and a codec is
	// exactly the pluggable component most likely to harbor a data-dependent
	// panic. Worker goroutines in measureArenaParallel carry their own
	// recovery; this one covers the sequential and session routes.
	defer func() {
		if r := recover(); r != nil {
			res, err = Result{}, fmt.Errorf("compress: measure %s: %w", codec.Name(), faults.AsError(r))
		}
	}()
	if rowsPerPage <= 0 {
		return Result{}, fmt.Errorf("compress: rowsPerPage %d must be positive", rowsPerPage)
	}
	if perm != nil && len(perm) != ar.Len() {
		return Result{}, fmt.Errorf("compress: permutation covers %d of %d arena rows", len(perm), ar.Len())
	}
	n := ar.Len()
	pages := (n + rowsPerPage - 1) / rowsPerPage
	if p, ok := codec.(Paged); ok {
		if ap, ok := p.PC.(PageAppender); ok {
			var res Result
			var err error
			if workers := measureWorkers(pages); workers > 1 {
				res, err = measureArenaParallel(keySchema, ap, ar, perm, rowsPerPage, pages, workers)
			} else {
				res, err = measureArenaSequential(keySchema, ap, ar, perm, rowsPerPage)
			}
			if err == nil {
				recordMeasure(codec, res)
			}
			return res, err
		}
	}
	// Generic codec: feed a session page by page, discarding encodings when
	// the session supports it (cross-page state forces sequential order).
	sess, err := codec.NewSession(keySchema)
	if err != nil {
		return Result{}, err
	}
	if d, ok := sess.(EncodedDiscarder); ok {
		d.DiscardEncoded()
	}
	viewPtr := pageViewPool.Get().(*[][]byte)
	defer pageViewPool.Put(viewPtr)
	for start := 0; start < n; start += rowsPerPage {
		end := start + rowsPerPage
		if end > n {
			end = n
		}
		view := fillPageView((*viewPtr)[:0], ar, perm, start, end)
		*viewPtr = view[:0]
		if err := encodePoint.Check(); err != nil {
			return Result{}, err
		}
		if err := sess.AddPage(view); err != nil {
			return Result{}, err
		}
	}
	res, err = sess.Finish()
	res.Encoded = nil
	if err == nil {
		recordMeasure(codec, res)
	}
	return res, err
}

// fillPageView appends the records of rows [start, end) — through perm when
// non-nil — onto view.
func fillPageView(view [][]byte, ar *value.RecordArena, perm []int32, start, end int) [][]byte {
	if perm == nil {
		for i := start; i < end; i++ {
			view = append(view, ar.Rec(i))
		}
		return view
	}
	for _, pi := range perm[start:end] {
		view = append(view, ar.Rec(int(pi)))
	}
	return view
}

// measureArenaSequential encodes every page into one pooled scratch buffer.
func measureArenaSequential(keySchema *value.Schema, ap PageAppender, ar *value.RecordArena, perm []int32, rowsPerPage int) (Result, error) {
	res := Result{UncompressedBytes: int64(ar.Len()) * int64(keySchema.RowWidth()), Rows: int64(ar.Len())}
	viewPtr := pageViewPool.Get().(*[][]byte)
	defer pageViewPool.Put(viewPtr)
	buf := getPageBuf()
	// Closure, not value capture: AppendPage may grow the buffer, and the
	// grown array is the one worth pooling.
	defer func() { putPageBuf(buf) }()
	n := ar.Len()
	for start := 0; start < n; start += rowsPerPage {
		end := start + rowsPerPage
		if end > n {
			end = n
		}
		view := fillPageView((*viewPtr)[:0], ar, perm, start, end)
		*viewPtr = view[:0]
		if err := encodePoint.Check(); err != nil {
			return Result{}, err
		}
		enc, de, err := ap.AppendPage(keySchema, view, buf[:0])
		if err != nil {
			return Result{}, err
		}
		buf = enc
		res.Pages++
		res.CompressedBytes += int64(len(enc))
		res.DictEntries += de
	}
	return res, nil
}

// measureArenaParallel fans page encodes across a bounded worker group,
// each with its own pooled scratch, and sums the per-worker tallies.
func measureArenaParallel(keySchema *value.Schema, ap PageAppender, ar *value.RecordArena, perm []int32, rowsPerPage, pages, workers int) (Result, error) {
	type partial struct {
		comp, dict int64
		err        error
	}
	partials := make([]partial, workers)
	var wg sync.WaitGroup
	// Contiguous page ranges per worker: worker w handles pages
	// [w·chunk, min((w+1)·chunk, pages)).
	chunk := (pages + workers - 1) / workers
	n := ar.Len()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic on a fan-out worker (poisoned codec, injected fault)
			// lands in this worker's error slot instead of crashing the
			// process; the gather below surfaces it like any page error.
			defer func() {
				if r := recover(); r != nil {
					partials[w].err = faults.AsError(r)
				}
			}()
			viewPtr := pageViewPool.Get().(*[][]byte)
			defer pageViewPool.Put(viewPtr)
			buf := getPageBuf()
			defer func() { putPageBuf(buf) }()
			for p := w * chunk; p < (w+1)*chunk && p < pages; p++ {
				start := p * rowsPerPage
				end := start + rowsPerPage
				if end > n {
					end = n
				}
				view := fillPageView((*viewPtr)[:0], ar, perm, start, end)
				*viewPtr = view[:0]
				if err := encodePoint.Check(); err != nil {
					partials[w].err = err
					return
				}
				enc, de, err := ap.AppendPage(keySchema, view, buf[:0])
				if err != nil {
					partials[w].err = err
					return
				}
				buf = enc
				partials[w].comp += int64(len(enc))
				partials[w].dict += de
			}
		}()
	}
	wg.Wait()
	res := Result{
		UncompressedBytes: int64(n) * int64(keySchema.RowWidth()),
		Rows:              int64(n),
		Pages:             pages,
	}
	for _, p := range partials {
		if p.err != nil {
			return Result{}, p.err
		}
		res.CompressedBytes += p.comp
		res.DictEntries += p.dict
	}
	return res, nil
}

// RowsPerPage returns how many fixed-width records of keySchema fit in one
// uncompressed page of pageSize bytes, accounting for the page header and
// per-record slot entries. This defines the page grouping used when
// compressing without a materialized index.
func RowsPerPage(keySchema *value.Schema, pageSize int) int {
	per := pageSize - page.HeaderSize
	cost := keySchema.RowWidth() + 4
	n := per / cost
	if n < 1 {
		n = 1
	}
	return n
}
