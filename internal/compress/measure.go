package compress

import (
	"fmt"

	"samplecf/internal/btree"
	"samplecf/internal/page"
	"samplecf/internal/value"
)

// MeasureTree compresses the leaf level of an index with codec and returns
// the whole-index Result, from which CF follows. The index must store, as
// each leaf entry's PAYLOAD, the fixed-width encoding of the keySchema row
// (value.EncodeRecord output) — the actual index record; the memcomparable
// search key is excluded from CF, matching the paper's model in which index
// rows are the column values themselves.
func MeasureTree(t *btree.Tree, keySchema *value.Schema, codec Codec) (Result, error) {
	sess, err := codec.NewSession(keySchema)
	if err != nil {
		return Result{}, err
	}
	err = t.LeafPages(func(_ uint32, p *page.Page) error {
		_, payloads, err := btree.LeafEntries(p)
		if err != nil {
			return err
		}
		return sess.AddPage(payloads)
	})
	if err != nil {
		return Result{}, fmt.Errorf("compress: measure tree: %w", err)
	}
	return sess.Finish()
}

// MeasureRecords chunks fixed-width records into synthetic pages of
// rowsPerPage and compresses them with codec. It is the array-backed
// fast path used by estimators that skip materializing a B+-tree.
func MeasureRecords(keySchema *value.Schema, codec Codec, records [][]byte, rowsPerPage int) (Result, error) {
	if rowsPerPage <= 0 {
		return Result{}, fmt.Errorf("compress: rowsPerPage %d must be positive", rowsPerPage)
	}
	sess, err := codec.NewSession(keySchema)
	if err != nil {
		return Result{}, err
	}
	for start := 0; start < len(records); start += rowsPerPage {
		end := start + rowsPerPage
		if end > len(records) {
			end = len(records)
		}
		if err := sess.AddPage(records[start:end]); err != nil {
			return Result{}, err
		}
	}
	return sess.Finish()
}

// RowsPerPage returns how many fixed-width records of keySchema fit in one
// uncompressed page of pageSize bytes, accounting for the page header and
// per-record slot entries. This defines the page grouping used when
// compressing without a materialized index.
func RowsPerPage(keySchema *value.Schema, pageSize int) int {
	per := pageSize - page.HeaderSize
	cost := keySchema.RowWidth() + 4
	n := per / cost
	if n < 1 {
		n = 1
	}
	return n
}
