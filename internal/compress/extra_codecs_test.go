package compress

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// extraCodecs are the extension codecs beyond the paper's NS/dictionary
// pair; all must satisfy the same round-trip contract.
var extraCodecs = []PageCodec{
	Huffman{},
	FrameOfRef{},
	&PageDict{BitPack: true},
	&PageDict{EntryNS: true, BitPack: true},
}

func TestExtraCodecsRoundTrip(t *testing.T) {
	schema := value.MustSchema(
		value.Column{Name: "s", Type: value.Char(20)},
		value.Column{Name: "n", Type: value.Int32()},
		value.Column{Name: "b", Type: value.Int64()},
	)
	r := rng.New(77)
	rows := randomRows(r, schema, 150)
	recs := mkRecords(t, schema, rows)
	for _, pc := range extraCodecs {
		enc, err := pc.EncodePage(schema, recs)
		if err != nil {
			t.Fatalf("%s encode: %v", pc.Name(), err)
		}
		dec, err := pc.DecodePage(schema, enc)
		if err != nil {
			t.Fatalf("%s decode: %v", pc.Name(), err)
		}
		if len(dec) != len(recs) {
			t.Fatalf("%s: %d records, want %d", pc.Name(), len(dec), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(dec[i], recs[i]) {
				t.Fatalf("%s: record %d mismatch", pc.Name(), i)
			}
		}
	}
}

func TestExtraCodecsEmptyAndTruncation(t *testing.T) {
	schema := charSchema(10)
	rec, _ := value.EncodeRecord(schema, value.Row{value.StringValue("abcde")}, nil)
	for _, pc := range extraCodecs {
		if enc, err := pc.EncodePage(schema, nil); err != nil {
			t.Errorf("%s empty encode: %v", pc.Name(), err)
		} else if dec, err := pc.DecodePage(schema, enc); err != nil || len(dec) != 0 {
			t.Errorf("%s empty round trip: %d records, %v", pc.Name(), len(dec), err)
		}
		enc, err := pc.EncodePage(schema, [][]byte{rec, rec})
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(enc); cut++ {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s panicked on truncation at %d: %v", pc.Name(), cut, p)
					}
				}()
				_, _ = pc.DecodePage(schema, enc[:cut])
			}()
		}
	}
}

func TestHuffmanCompressesSkewedText(t *testing.T) {
	// Low-entropy content (few letters, repeated) must shrink well below NS.
	schema := charSchema(30)
	var recs [][]byte
	for i := 0; i < 200; i++ {
		s := strings.Repeat("ab", 10+(i%5))
		rec, err := value.EncodeRecord(schema, value.Row{value.StringValue(s)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	huff, err := Huffman{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NullSuppression{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(huff) >= len(ns) {
		t.Fatalf("huffman (%d) not smaller than NS (%d) on 1-bit/char text", len(huff), len(ns))
	}
}

func TestHuffmanSingleSymbolAlphabet(t *testing.T) {
	// Degenerate histogram: every stream byte identical.
	schema := charSchema(8)
	rec, _ := value.EncodeRecord(schema, value.Row{value.StringValue("aaaa")}, nil)
	recs := [][]byte{rec, rec, rec}
	enc, err := Huffman{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Huffman{}.DecodePage(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 || !bytes.Equal(dec[0], rec) {
		t.Fatal("single-symbol round trip failed")
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	// Property: canonical codes from any histogram are prefix-free.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var freq [256]int64
		nsyms := 1 + r.Intn(40)
		for i := 0; i < nsyms; i++ {
			freq[r.Intn(256)] = int64(1 + r.Intn(1000))
		}
		lens := huffmanCodeLengths(freq[:])
		codes := canonicalCodes(lens)
		type cl struct {
			bits uint64
			l    byte
		}
		var used []cl
		for s := 0; s < 256; s++ {
			if lens[s] == 0 {
				continue
			}
			used = append(used, cl{codes[s].bits, codes[s].len})
		}
		for i := 0; i < len(used); i++ {
			for j := 0; j < len(used); j++ {
				if i == j {
					continue
				}
				a, b := used[i], used[j]
				if a.l > b.l {
					continue
				}
				// a must not be a prefix of b.
				if b.bits>>(b.l-a.l) == a.bits {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFrameOfRefDenseKeys(t *testing.T) {
	// Dense int64 surrogate keys: 8 bytes/row must drop to ~2 + framing.
	schema := value.MustSchema(value.Column{Name: "id", Type: value.Int64()})
	var recs [][]byte
	const n = 500
	for i := 0; i < n; i++ {
		rec, _ := value.EncodeRecord(schema, value.Row{value.Int64Value(int64(9_000_000 + i))}, nil)
		recs = append(recs, rec)
	}
	enc, err := FrameOfRef{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	// 2 rows hdr + 1 tag + 8 base + 1 width + n×2 deltas.
	want := 2 + 1 + 8 + 1 + n*2
	if len(enc) != want {
		t.Fatalf("FOR page = %d bytes, want %d", len(enc), want)
	}
	dec, err := FrameOfRef{}.DecodePage(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !bytes.Equal(dec[i], recs[i]) {
			t.Fatalf("FOR round trip mismatch at %d", i)
		}
	}
}

func TestFrameOfRefNegativeAndExtremes(t *testing.T) {
	schema := value.MustSchema(value.Column{Name: "v", Type: value.Int32()})
	vals := []int32{-1 << 31, -1, 0, 1, 1<<31 - 1}
	var recs [][]byte
	for _, v := range vals {
		rec, _ := value.EncodeRecord(schema, value.Row{value.IntValue(v)}, nil)
		recs = append(recs, rec)
	}
	enc, err := FrameOfRef{}.EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := FrameOfRef{}.DecodePage(schema, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got := value.DecodeInt32(dec[i]); got != v {
			t.Fatalf("extreme %d: got %d", v, got)
		}
	}
}

func TestBitPackedDictSmallerThanByteAligned(t *testing.T) {
	// 5 distinct values → 3-bit pointers vs 1 byte: pointers shrink ~2.6×.
	schema := charSchema(16)
	var recs [][]byte
	for i := 0; i < 400; i++ {
		rec, _ := value.EncodeRecord(schema, value.Row{value.StringValue(fmt.Sprintf("v%d", i%5))}, nil)
		recs = append(recs, rec)
	}
	byteAligned, err := (&PageDict{}).EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := (&PageDict{BitPack: true}).EncodePage(schema, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(byteAligned) {
		t.Fatalf("bitpack (%d) not smaller than byte-aligned (%d)", len(packed), len(byteAligned))
	}
	// 400 pointers × 3 bits = 150 bytes vs 400 bytes.
	saved := len(byteAligned) - len(packed)
	if saved != 400-150 {
		t.Fatalf("saved %d bytes, want 250", saved)
	}
}

func TestBitWidthBoundaries(t *testing.T) {
	cases := []struct {
		m    int
		want byte
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}, {257, 9},
	}
	for _, c := range cases {
		if got := bitWidth(c.m); got != c.want {
			t.Errorf("bitWidth(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestNewCodecsRegistered(t *testing.T) {
	for _, name := range []string{"huffman", "for", "pagedict+bitpack"} {
		c, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if c.Name() == "" {
			t.Errorf("%q: empty name", name)
		}
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	benchmarkEncode(b, Huffman{})
}

func BenchmarkFOREncode(b *testing.B) {
	schema := value.MustSchema(value.Column{Name: "id", Type: value.Int64()})
	var recs [][]byte
	for i := 0; i < 300; i++ {
		rec, _ := value.EncodeRecord(schema, value.Row{value.Int64Value(int64(i))}, nil)
		recs = append(recs, rec)
	}
	b.SetBytes(int64(len(recs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (FrameOfRef{}).EncodePage(schema, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHuffmanRejectsUltraWideRows(t *testing.T) {
	// 17 CHAR(4000) columns at full length exceed the 64 KiB row framing.
	cols := make([]value.Column, 17)
	for i := range cols {
		cols[i] = value.Column{Name: fmt.Sprintf("c%d", i), Type: value.Char(4000)}
	}
	schema := value.MustSchema(cols...)
	row := make(value.Row, 17)
	for i := range row {
		row[i] = bytes.Repeat([]byte{'x'}, 4000)
	}
	rec, err := value.EncodeRecord(schema, row, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Huffman{}).EncodePage(schema, [][]byte{rec}); err == nil {
		t.Fatal("ultra-wide row accepted by huffman framing")
	}
}
