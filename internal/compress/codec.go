// Package compress implements the compression codecs whose compression
// fraction (CF) the paper's SampleCF estimator estimates, plus the
// measurement plumbing that computes CF over an index.
//
// Two codec families are provided:
//
//   - PageCodec: stateless per-page compression (null suppression, page-
//     level dictionary with the dictionary in-lined in every page, common-
//     prefix, run-length, and a pick-best composite). These mirror how
//     commercial engines compress index leaf pages.
//   - Codec/Session: whole-index compression with cross-page state. The
//     global-dictionary codec (the paper's simplified analytical model in
//     §III-B) lives here, as does the adapter that lifts any PageCodec.
//
// All codecs implement real encode AND decode; round-trip tests guarantee
// the measured sizes describe decodable representations rather than
// accounting fictions.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sync"

	"samplecf/internal/value"
)

// ErrCorrupt is returned when a compressed payload cannot be decoded.
var ErrCorrupt = errors.New("compress: corrupt payload")

// PageCodec compresses one page worth of fixed-width index records at a
// time, independently of other pages.
type PageCodec interface {
	// Name identifies the codec in registries and experiment output.
	Name() string
	// EncodePage compresses records (each exactly schema.RowWidth() bytes).
	EncodePage(schema *value.Schema, records [][]byte) ([]byte, error)
	// DecodePage reverses EncodePage, returning records of RowWidth bytes.
	DecodePage(schema *value.Schema, data []byte) ([][]byte, error)
}

// PageAppender is the allocation-free encode path every built-in PageCodec
// implements: AppendPage appends the page's encoding to dst (reusing dst's
// capacity — callers pool the buffer) and returns the extended buffer plus
// the number of dictionary entries the page stores. Implementations must
// not mutate receiver state, so one codec instance can encode pages from
// multiple goroutines concurrently; all per-page working memory comes from
// internal sync.Pools. The bytes appended are exactly what EncodePage
// returns for the same input.
type PageAppender interface {
	AppendPage(schema *value.Schema, records [][]byte, dst []byte) ([]byte, int64, error)
}

// Session accumulates the pages of one index during whole-index compression.
type Session interface {
	// AddPage feeds the records of one uncompressed leaf page.
	AddPage(records [][]byte) error
	// Finish returns the result. The session is unusable afterwards.
	Finish() (Result, error)
}

// EncodedDiscarder is the measurement fast path on sessions: after
// DiscardEncoded, the session's Result carries sizes only (Encoded stays
// nil), freeing the session to reuse one scratch buffer for every page
// instead of retaining each page's encoding. Estimators — which only ever
// read the size tally — use it; round-trip tests do not.
type EncodedDiscarder interface {
	DiscardEncoded()
}

// Result summarizes one whole-index compression.
type Result struct {
	// UncompressedBytes is the fixed-width data size: rows × row width.
	UncompressedBytes int64
	// CompressedBytes is the total encoded payload size.
	CompressedBytes int64
	// Rows is the number of records consumed.
	Rows int64
	// Pages is the number of input pages consumed.
	Pages int
	// DictEntries is the total number of dictionary entries stored (summed
	// over pages for paged dictionaries; the paper's Σ Pg(i)). Zero for
	// codecs with no dictionary.
	DictEntries int64
	// Encoded holds the compressed representation: one element per page for
	// paged codecs, plus codec-specific leading blobs (e.g. the global
	// dictionary). Present so round-trip tests can decode; callers that only
	// need sizes may ignore it.
	Encoded [][]byte
}

// CF returns the compression fraction: compressed / uncompressed size.
// It returns 1 when no data was consumed (the degenerate empty index).
func (r Result) CF() float64 {
	if r.UncompressedBytes == 0 {
		return 1
	}
	return float64(r.CompressedBytes) / float64(r.UncompressedBytes)
}

// Codec creates whole-index compression sessions.
type Codec interface {
	// Name identifies the codec.
	Name() string
	// NewSession starts compressing one index with the given record schema.
	NewSession(schema *value.Schema) (Session, error)
}

// Paged lifts a PageCodec into a Codec whose sessions compress each page
// independently — the shape commercial page compression takes.
type Paged struct {
	PC PageCodec
}

// Name implements Codec.
func (p Paged) Name() string { return p.PC.Name() }

// NewSession implements Codec.
func (p Paged) NewSession(schema *value.Schema) (Session, error) {
	if schema == nil {
		return nil, fmt.Errorf("compress: nil schema")
	}
	return &pagedSession{pc: p.PC, schema: schema}, nil
}

type pagedSession struct {
	pc      PageCodec
	schema  *value.Schema
	res     Result
	done    bool
	discard bool
	scratch []byte // pooled page buffer, only used when discard is set
}

// DiscardEncoded implements EncodedDiscarder.
func (s *pagedSession) DiscardEncoded() { s.discard = true }

// AddPage implements Session.
func (s *pagedSession) AddPage(records [][]byte) error {
	if s.done {
		return fmt.Errorf("compress: session finished")
	}
	var enc []byte
	var err error
	if ap, ok := s.pc.(PageAppender); ok {
		var de int64
		if s.discard {
			// Size-only mode: encode into the session's pooled scratch,
			// which the next page overwrites.
			if s.scratch == nil {
				s.scratch = getPageBuf()
			}
			enc, de, err = ap.AppendPage(s.schema, records, s.scratch[:0])
			s.scratch = enc
		} else {
			enc, de, err = ap.AppendPage(s.schema, records, nil)
		}
		if err != nil {
			return err
		}
		s.res.DictEntries += de
	} else {
		enc, err = s.pc.EncodePage(s.schema, records)
		if err != nil {
			return err
		}
		if de, ok := s.pc.(dictEntryCounter); ok {
			s.res.DictEntries += de.lastDictEntries()
		}
	}
	s.res.Pages++
	s.res.Rows += int64(len(records))
	s.res.UncompressedBytes += int64(len(records)) * int64(s.schema.RowWidth())
	s.res.CompressedBytes += int64(len(enc))
	if !s.discard {
		s.res.Encoded = append(s.res.Encoded, enc)
	}
	return nil
}

// Finish implements Session.
func (s *pagedSession) Finish() (Result, error) {
	if s.done {
		return Result{}, fmt.Errorf("compress: session finished twice")
	}
	s.done = true
	if s.scratch != nil {
		putPageBuf(s.scratch)
		s.scratch = nil
	}
	return s.res, nil
}

// dictEntryCounter is implemented by page codecs that maintain dictionaries
// so the paged session can surface Σ Pg(i).
type dictEntryCounter interface {
	lastDictEntries() int64
}

// --- shared low-level helpers -----------------------------------------------

// lenHeaderSize returns the paper's h: bytes needed to record a length in
// [0, k].
func lenHeaderSize(k int) int {
	if k < 1<<8 {
		return 1
	}
	return 2
}

// putLen appends a length header of the given size.
func putLen(dst []byte, l, size int) []byte {
	switch size {
	case 1:
		return append(dst, byte(l))
	default:
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(l))
		return append(dst, b[:]...)
	}
}

// getLen reads a length header of the given size, returning the length and
// remaining buffer.
func getLen(src []byte, size int) (int, []byte, error) {
	if len(src) < size {
		return 0, nil, ErrCorrupt
	}
	switch size {
	case 1:
		return int(src[0]), src[1:], nil
	default:
		return int(binary.LittleEndian.Uint16(src)), src[2:], nil
	}
}

// pointerSize returns the byte-aligned pointer width for a dictionary of m
// entries (the paper's p, ⌈log₂ m⌉ bits rounded up to whole bytes).
func pointerSize(m int) int {
	switch {
	case m <= 1<<8:
		return 1
	case m <= 1<<16:
		return 2
	case m <= 1<<24:
		return 3
	default:
		return 4
	}
}

// putPointer appends idx using width bytes (little-endian).
func putPointer(dst []byte, idx, width int) []byte {
	for i := 0; i < width; i++ {
		dst = append(dst, byte(idx>>(8*i)))
	}
	return dst
}

// getPointer reads a width-byte pointer.
func getPointer(src []byte, width int) (int, []byte, error) {
	if len(src) < width {
		return 0, nil, ErrCorrupt
	}
	idx := 0
	for i := 0; i < width; i++ {
		idx |= int(src[i]) << (8 * i)
	}
	return idx, src[width:], nil
}

// columnOffsets returns the [start, end) byte range of each column within a
// fixed-width record. The result is cached on the schema; callers must not
// mutate it.
func columnOffsets(schema *value.Schema) [][2]int { return schema.ColumnOffsets() }

// checkRecords validates that every record has the schema's fixed width.
func checkRecords(schema *value.Schema, records [][]byte) error {
	w := schema.RowWidth()
	for i, r := range records {
		if len(r) != w {
			return fmt.Errorf("compress: record %d is %d bytes, want %d", i, len(r), w)
		}
	}
	return nil
}

// suppressColumn returns the null-suppressed payload of one stored
// fixed-width column value.
func suppressColumn(t value.Type, stored []byte) []byte {
	if t.IsCharacter() {
		return value.TrimPadding(t, stored)
	}
	return value.SuppressIntPadding(stored)
}

// expandColumn reverses suppressColumn into dst (which must be the column's
// fixed width and zero/pad-filled by the caller via expandInto).
func expandInto(t value.Type, suppressed []byte, dst []byte) {
	if t.IsCharacter() {
		copy(dst, suppressed)
		for i := len(suppressed); i < len(dst); i++ {
			dst[i] = t.PadByte()
		}
		return
	}
	copy(dst, value.ExpandIntPadding(suppressed, len(dst)))
}

// --- pooled scratch -----------------------------------------------------------

// pageBufPool recycles page-encoding output buffers for size-only
// measurement, where a page's encoding is dead the moment its length has
// been tallied. Steady state, the whole estimation hot path encodes every
// page of every index into a handful of these.
var pageBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 16<<10); return &b },
}

// getPageBuf fetches an empty pooled buffer.
func getPageBuf() []byte { return (*(pageBufPool.Get().(*[]byte)))[:0] }

// putPageBuf returns a buffer to the pool.
func putPageBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	pageBufPool.Put(&b)
}

// --- registry ----------------------------------------------------------------

var (
	regMu    sync.RWMutex
	registry = map[string]func() Codec{}
)

// Register adds a codec constructor under name. It panics on duplicates
// (registration happens at init time).
func Register(name string, ctor func() Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("compress: duplicate codec %q", name))
	}
	registry[name] = ctor
}

// Lookup returns a new codec instance by name.
func Lookup(name string) (Codec, error) {
	regMu.RLock()
	ctor, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists registered codec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}
