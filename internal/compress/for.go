package compress

import (
	"encoding/binary"

	"samplecf/internal/value"
)

// FrameOfRef is per-page frame-of-reference compression for integer
// columns: each column stores its page-minimum once and every row stores
// only the offset from it, in the fewest whole bytes that span the page's
// value range. Dense surrogate keys — the classic index key — collapse to
// 1-2 bytes per row. Character columns fall back to null suppression, so
// the codec is total over any schema (a requirement for SampleCF's
// agnosticism: codecs must accept whatever index they are pointed at).
//
// Encoded page layout:
//
//	[rows uint16]
//	per column: [tag uint8]  (0 = NS fallback, 1 = FOR)
//	  NS:  per row [len h][bytes]
//	  FOR: [base int64][width uint8][rows × width bytes of deltas]
type FrameOfRef struct{}

// Name implements PageCodec.
func (FrameOfRef) Name() string { return "for" }

// Column tags.
const (
	forTagNS  = 0
	forTagFOR = 1
)

// EncodePage implements PageCodec.
func (f FrameOfRef) EncodePage(schema *value.Schema, records [][]byte) ([]byte, error) {
	out, _, err := f.AppendPage(schema, records, nil)
	return out, err
}

// AppendPage implements PageAppender.
func (FrameOfRef) AppendPage(schema *value.Schema, records [][]byte, dst []byte) ([]byte, int64, error) {
	if err := checkRecords(schema, records); err != nil {
		return dst, 0, err
	}
	if len(records) > maxPageRows {
		return dst, 0, ErrCorrupt
	}
	cols := columnOffsets(schema)
	out := dst
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(records)))
	out = append(out, hdr[:]...)

	for c := range cols {
		t := schema.Column(c).Type
		if !t.IsCharacter() {
			out = append(out, forTagFOR)
			out = encodeFORColumn(out, t, cols[c], records)
			continue
		}
		out = append(out, forTagNS)
		h := lenHeaderSize(t.FixedWidth())
		for _, rec := range records {
			sup := suppressColumn(t, rec[cols[c][0]:cols[c][1]])
			out = putLen(out, len(sup), h)
			out = append(out, sup...)
		}
	}
	return out, 0, nil
}

// encodeFORColumn emits base + width + packed deltas for one int column.
func encodeFORColumn(out []byte, t value.Type, span [2]int, records [][]byte) []byte {
	decode := func(rec []byte) int64 {
		field := rec[span[0]:span[1]]
		if t.Kind == value.KindInt32 {
			return int64(value.DecodeInt32(field))
		}
		return value.DecodeInt64(field)
	}
	base := int64(0)
	if len(records) > 0 {
		base = decode(records[0])
		for _, rec := range records[1:] {
			if v := decode(rec); v < base {
				base = v
			}
		}
	}
	// Delta width: bytes needed for the largest unsigned offset.
	var maxDelta uint64
	for _, rec := range records {
		if d := uint64(decode(rec) - base); d > maxDelta {
			maxDelta = d
		}
	}
	width := 1
	for maxDelta >= 1<<(8*width) && width < 8 {
		width++
	}
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(base))
	out = append(out, b8[:]...)
	out = append(out, byte(width))
	for _, rec := range records {
		d := uint64(decode(rec) - base)
		for i := 0; i < width; i++ {
			out = append(out, byte(d>>(8*i)))
		}
	}
	return out
}

// DecodePage implements PageCodec.
func (FrameOfRef) DecodePage(schema *value.Schema, data []byte) ([][]byte, error) {
	if len(data) < 2 {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	cols := columnOffsets(schema)
	records := make([][]byte, rows)
	for i := range records {
		records[i] = make([]byte, schema.RowWidth())
	}
	for c := range cols {
		t := schema.Column(c).Type
		if len(data) < 1 {
			return nil, ErrCorrupt
		}
		tag := data[0]
		data = data[1:]
		switch tag {
		case forTagNS:
			h := lenHeaderSize(t.FixedWidth())
			for i := 0; i < rows; i++ {
				l, rest, err := getLen(data, h)
				if err != nil {
					return nil, err
				}
				if l > t.FixedWidth() || len(rest) < l {
					return nil, ErrCorrupt
				}
				expandInto(t, rest[:l], records[i][cols[c][0]:cols[c][1]])
				data = rest[l:]
			}
		case forTagFOR:
			if t.IsCharacter() {
				return nil, ErrCorrupt // tag/schema mismatch
			}
			if len(data) < 9 {
				return nil, ErrCorrupt
			}
			base := int64(binary.LittleEndian.Uint64(data))
			width := int(data[8])
			data = data[9:]
			if width < 1 || width > 8 || len(data) < rows*width {
				return nil, ErrCorrupt
			}
			for i := 0; i < rows; i++ {
				var d uint64
				for b := 0; b < width; b++ {
					d |= uint64(data[b]) << (8 * b)
				}
				data = data[width:]
				v := base + int64(d)
				if t.Kind == value.KindInt32 {
					copy(records[i][cols[c][0]:cols[c][1]], value.IntValue(int32(v)))
				} else {
					copy(records[i][cols[c][0]:cols[c][1]], value.Int64Value(v))
				}
			}
		default:
			return nil, ErrCorrupt
		}
	}
	if len(data) != 0 {
		return nil, ErrCorrupt
	}
	return records, nil
}

func init() {
	Register("for", func() Codec { return Paged{PC: FrameOfRef{}} })
}
