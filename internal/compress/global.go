package compress

import (
	"encoding/binary"
	"fmt"

	"samplecf/internal/value"
)

// GlobalDict is the paper's simplified dictionary-compression model
// (§III-B): paging effects are ignored, a single global dictionary per
// column stores each distinct value once at the column's fixed width, and
// every row stores one pointer of p bytes. The whole-index compressed size
// per column is therefore n·p + d·k — the expression the paper's CF_D and
// its estimator CF'_D = p/k + d'/r are built from.
type GlobalDict struct {
	// PointerBytes fixes the paper's constant p. When 0, the pointer width
	// is chosen at Finish from the final dictionary size (⌈log₂ d⌉ bits
	// rounded to bytes), per the paper's "in general requires" remark.
	PointerBytes int
}

// Name implements Codec.
func (g GlobalDict) Name() string {
	if g.PointerBytes > 0 {
		return fmt.Sprintf("globaldict(p=%d)", g.PointerBytes)
	}
	return "globaldict"
}

// NewSession implements Codec.
func (g GlobalDict) NewSession(schema *value.Schema) (Session, error) {
	if schema == nil {
		return nil, fmt.Errorf("compress: nil schema")
	}
	if g.PointerBytes < 0 || g.PointerBytes > 8 {
		return nil, fmt.Errorf("compress: pointer size %d out of range", g.PointerBytes)
	}
	s := &globalSession{g: g, schema: schema, cols: columnOffsets(schema)}
	s.dicts = make([]map[string]int, schema.NumColumns())
	s.entries = make([][][]byte, schema.NumColumns())
	s.ptrs = make([][]uint32, schema.NumColumns())
	for c := range s.dicts {
		s.dicts[c] = make(map[string]int)
	}
	return s, nil
}

type globalSession struct {
	g      GlobalDict
	schema *value.Schema
	cols   [][2]int

	dicts   []map[string]int
	entries [][][]byte // per column: dictionary entries in first-appearance order
	ptrs    [][]uint32 // per column: one pointer per row
	rows    int64
	pages   int
	done    bool
	discard bool
}

// DiscardEncoded implements EncodedDiscarder: sizes are computed
// arithmetically at Finish (n·p + Σ m·k per column plus framing, the
// paper's formula), so neither the entry payloads nor the per-row pointers
// need to be retained — only the membership maps.
func (s *globalSession) DiscardEncoded() { s.discard = true }

// AddPage implements Session.
func (s *globalSession) AddPage(records [][]byte) error {
	if s.done {
		return fmt.Errorf("compress: session finished")
	}
	if err := checkRecords(s.schema, records); err != nil {
		return err
	}
	for _, rec := range records {
		for c := range s.cols {
			v := rec[s.cols[c][0]:s.cols[c][1]]
			j, ok := s.dicts[c][string(v)]
			if !ok {
				j = len(s.dicts[c])
				s.dicts[c][string(v)] = j
				if !s.discard {
					s.entries[c] = append(s.entries[c], append([]byte(nil), v...))
				}
			}
			if !s.discard {
				s.ptrs[c] = append(s.ptrs[c], uint32(j))
			}
		}
	}
	s.rows += int64(len(records))
	s.pages++
	return nil
}

// Finish implements Session. The encoded output is a single blob:
//
//	[rows uint32]
//	per column: [entries uint32][entry bytes (fixed width each)]
//	            [pointers rows × p bytes]
func (s *globalSession) Finish() (Result, error) {
	if s.done {
		return Result{}, fmt.Errorf("compress: session finished twice")
	}
	s.done = true
	res := Result{
		Rows:              s.rows,
		Pages:             s.pages,
		UncompressedBytes: s.rows * int64(s.schema.RowWidth()),
	}
	if s.discard {
		// Size-only: the blob above is arithmetic — 4 bytes of row count,
		// then per column 4 bytes of entry count, m fixed-width entries,
		// and one p-byte pointer per row.
		res.CompressedBytes = 4
		for c := range s.cols {
			m := len(s.dicts[c])
			p := s.g.PointerBytes
			if p == 0 {
				p = pointerSize(m)
			}
			w := s.cols[c][1] - s.cols[c][0]
			res.CompressedBytes += 4 + int64(m)*int64(w) + s.rows*int64(p)
			res.DictEntries += int64(m)
		}
		return res, nil
	}
	var out []byte
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(s.rows))
	out = append(out, b4[:]...)
	for c := range s.cols {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(s.entries[c])))
		out = append(out, b4[:]...)
		for _, e := range s.entries[c] {
			out = append(out, e...)
		}
		p := s.g.PointerBytes
		if p == 0 {
			p = pointerSize(len(s.entries[c]))
		}
		for _, j := range s.ptrs[c] {
			out = putPointer(out, int(j), p)
		}
		res.DictEntries += int64(len(s.entries[c]))
	}
	res.CompressedBytes = int64(len(out))
	res.Encoded = [][]byte{out}
	return res, nil
}

// DecodeGlobal reverses a GlobalDict session's encoded blob back into
// fixed-width records, for round-trip verification.
func DecodeGlobal(g GlobalDict, schema *value.Schema, blob []byte) ([][]byte, error) {
	cols := columnOffsets(schema)
	if len(blob) < 4 {
		return nil, ErrCorrupt
	}
	rows := int(binary.LittleEndian.Uint32(blob))
	blob = blob[4:]
	records := make([][]byte, rows)
	for i := range records {
		records[i] = make([]byte, schema.RowWidth())
	}
	for c := range cols {
		w := cols[c][1] - cols[c][0]
		if len(blob) < 4 {
			return nil, ErrCorrupt
		}
		m := int(binary.LittleEndian.Uint32(blob))
		blob = blob[4:]
		if len(blob) < m*w {
			return nil, ErrCorrupt
		}
		entries := make([][]byte, m)
		for j := 0; j < m; j++ {
			entries[j] = blob[:w]
			blob = blob[w:]
		}
		p := g.PointerBytes
		if p == 0 {
			p = pointerSize(m)
		}
		for i := 0; i < rows; i++ {
			j, rest, err := getPointer(blob, p)
			if err != nil {
				return nil, err
			}
			if j >= m {
				return nil, ErrCorrupt
			}
			copy(records[i][cols[c][0]:cols[c][1]], entries[j])
			blob = rest
		}
	}
	if len(blob) != 0 {
		return nil, ErrCorrupt
	}
	return records, nil
}

func init() {
	Register("globaldict", func() Codec { return GlobalDict{} })
	Register("globaldict-p4", func() Codec { return GlobalDict{PointerBytes: 4} })
}
