package compress

import (
	"bytes"
	"testing"

	"samplecf/internal/value"
)

// Fuzz targets: decoders must never panic and must reject or round-trip —
// silently "succeeding" with wrong output on valid input is caught by the
// re-encode check.

// fuzzSchema is a mixed schema exercising every type kind.
var fuzzSchema = value.MustSchema(
	value.Column{Name: "c", Type: value.Char(12)},
	value.Column{Name: "v", Type: value.VarChar(6)},
	value.Column{Name: "i", Type: value.Int32()},
	value.Column{Name: "b", Type: value.Int64()},
)

// fuzzDecode drives one codec's decoder with arbitrary bytes.
func fuzzDecode(f *testing.F, pc PageCodec) {
	// Seed with a valid encoding so the fuzzer starts near the format.
	rows := []value.Row{
		{value.StringValue("hello"), value.StringValue("ab"), value.IntValue(-7), value.Int64Value(1 << 40)},
		{value.StringValue(""), value.StringValue(""), value.IntValue(0), value.Int64Value(0)},
	}
	var recs [][]byte
	for _, r := range rows {
		rec, err := value.EncodeRecord(fuzzSchema, r, nil)
		if err != nil {
			f.Fatal(err)
		}
		recs = append(recs, rec)
	}
	valid, err := pc.EncodePage(fuzzSchema, recs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := pc.DecodePage(fuzzSchema, data)
		if err != nil {
			return // rejected: fine
		}
		// Accepted: every decoded record must be well-formed, and
		// re-encoding must succeed (internal consistency).
		for _, rec := range dec {
			if len(rec) != fuzzSchema.RowWidth() {
				t.Fatalf("decoded record of %d bytes, want %d", len(rec), fuzzSchema.RowWidth())
			}
		}
		re, err := pc.EncodePage(fuzzSchema, dec)
		if err != nil {
			t.Fatalf("re-encode of accepted decode failed: %v", err)
		}
		// And decoding the re-encysted bytes must reproduce the records.
		dec2, err := pc.DecodePage(fuzzSchema, re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(dec2) != len(dec) {
			t.Fatalf("re-decode count %d vs %d", len(dec2), len(dec))
		}
		for i := range dec {
			if !bytes.Equal(dec[i], dec2[i]) {
				t.Fatalf("re-round-trip mismatch at %d", i)
			}
		}
	})
}

func FuzzNSDecode(f *testing.F)       { fuzzDecode(f, NullSuppression{}) }
func FuzzPageDictDecode(f *testing.F) { fuzzDecode(f, &PageDict{}) }
func FuzzBitpackDecode(f *testing.F)  { fuzzDecode(f, &PageDict{EntryNS: true, BitPack: true}) }
func FuzzPrefixDecode(f *testing.F)   { fuzzDecode(f, Prefix{}) }
func FuzzRLEDecode(f *testing.F)      { fuzzDecode(f, RLE{}) }
func FuzzHuffmanDecode(f *testing.F)  { fuzzDecode(f, Huffman{}) }
func FuzzFORDecode(f *testing.F)      { fuzzDecode(f, FrameOfRef{}) }
func FuzzPickBestDecode(f *testing.F) { fuzzDecode(f, NewPageCompression()) }
