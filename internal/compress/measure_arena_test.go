package compress

import (
	"testing"

	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// measureTestArena builds an arena of pseudo-random rows plus a shuffled
// permutation over them.
func measureTestArena(t *testing.T, n int) (*value.Schema, *value.RecordArena, []int32) {
	t.Helper()
	schema := value.MustSchema(
		value.Column{Name: "s", Type: value.Char(12)},
		value.Column{Name: "i", Type: value.Int32()},
	)
	g := rng.New(42)
	ar := value.NewRecordArena(schema, n)
	for i := 0; i < n; i++ {
		payload := []byte("v")
		for l := g.Intn(10); l > 0; l-- {
			payload = append(payload, byte('a'+g.Intn(4)))
		}
		row := value.Row{payload, value.IntValue(int32(g.Intn(50)))}
		if err := ar.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	g.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return schema, ar, perm
}

// permRecords materializes the [][]byte view MeasureRecords consumes, in
// perm order.
func permRecords(ar *value.RecordArena, perm []int32) [][]byte {
	recs := make([][]byte, len(perm))
	for i, pi := range perm {
		recs[i] = ar.Rec(int(pi))
	}
	return recs
}

// TestMeasureArenaMatchesMeasureRecords: for every registered codec, the
// arena fast path (pooled scratch, discarded encodings, possible parallel
// fan-out) must report exactly the sizes the retained session path reports.
func TestMeasureArenaMatchesMeasureRecords(t *testing.T) {
	schema, ar, perm := measureTestArena(t, 700)
	recs := permRecords(ar, perm)
	const rpp = 64
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			codec, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := MeasureRecords(schema, codec, recs, rpp)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MeasureArena(schema, codec, ar, perm, rpp)
			if err != nil {
				t.Fatal(err)
			}
			if got.Encoded != nil {
				t.Error("MeasureArena retained encodings")
			}
			if got.CompressedBytes != want.CompressedBytes ||
				got.UncompressedBytes != want.UncompressedBytes ||
				got.Rows != want.Rows || got.Pages != want.Pages ||
				got.DictEntries != want.DictEntries {
				t.Errorf("MeasureArena = {comp=%d uncomp=%d rows=%d pages=%d dict=%d}, want {%d %d %d %d %d}",
					got.CompressedBytes, got.UncompressedBytes, got.Rows, got.Pages, got.DictEntries,
					want.CompressedBytes, want.UncompressedBytes, want.Rows, want.Pages, want.DictEntries)
			}
		})
	}
}

// TestMeasureArenaParallelMatchesSequential drives the worker fan-out
// directly (GOMAXPROCS-independent) and requires byte-identical tallies,
// including the non-even last chunk and a single-page arena.
func TestMeasureArenaParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 63, 64, 700, 1337} {
		schema, ar, perm := measureTestArena(t, n)
		const rpp = 64
		pages := (n + rpp - 1) / rpp
		for _, pcName := range []string{"nullsuppression", "rle", "prefix", "pagedict+ns", "page", "for"} {
			codec, err := Lookup(pcName)
			if err != nil {
				t.Fatal(err)
			}
			ap, ok := codec.(Paged).PC.(PageAppender)
			if !ok {
				t.Fatalf("%s page codec is not a PageAppender", pcName)
			}
			seq, err := measureArenaSequential(schema, ap, ar, perm, rpp)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				w := workers
				if w > pages {
					w = pages
				}
				if w < 1 {
					w = 1
				}
				par, err := measureArenaParallel(schema, ap, ar, perm, rpp, pages, w)
				if err != nil {
					t.Fatal(err)
				}
				if par.CompressedBytes != seq.CompressedBytes || par.UncompressedBytes != seq.UncompressedBytes ||
					par.Rows != seq.Rows || par.Pages != seq.Pages || par.DictEntries != seq.DictEntries {
					t.Errorf("n=%d %s workers=%d: parallel %+v != sequential %+v", n, pcName, workers, par, seq)
				}
			}
		}
	}
}

// TestMeasureArenaErrors covers argument validation.
func TestMeasureArenaErrors(t *testing.T) {
	schema, ar, perm := measureTestArena(t, 10)
	codec, err := Lookup("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureArena(schema, codec, ar, perm, 0); err == nil {
		t.Error("rowsPerPage 0 accepted")
	}
	if _, err := MeasureArena(schema, codec, ar, perm[:5], 4); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := MeasureArena(schema, codec, ar, nil, 4); err != nil {
		t.Errorf("nil permutation rejected: %v", err)
	}
}

// TestSessionDiscardEncoded: a discarding session reports the same sizes as
// a retaining one, with no Encoded payloads.
func TestSessionDiscardEncoded(t *testing.T) {
	schema, ar, perm := measureTestArena(t, 200)
	recs := permRecords(ar, perm)
	for _, name := range []string{"pagedict+ns", "globaldict", "globaldict-p4"} {
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		keep, err := MeasureRecords(schema, codec, recs, 64)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := codec.NewSession(schema)
		if err != nil {
			t.Fatal(err)
		}
		d, ok := sess.(EncodedDiscarder)
		if !ok {
			t.Fatalf("%s session is not an EncodedDiscarder", name)
		}
		d.DiscardEncoded()
		for start := 0; start < len(recs); start += 64 {
			end := start + 64
			if end > len(recs) {
				end = len(recs)
			}
			if err := sess.AddPage(recs[start:end]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := sess.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if got.Encoded != nil {
			t.Errorf("%s: discarding session retained encodings", name)
		}
		if got.CompressedBytes != keep.CompressedBytes || got.DictEntries != keep.DictEntries ||
			got.Rows != keep.Rows || got.Pages != keep.Pages {
			t.Errorf("%s: discard sizes {%d %d %d %d} != retain {%d %d %d %d}", name,
				got.CompressedBytes, got.DictEntries, got.Rows, got.Pages,
				keep.CompressedBytes, keep.DictEntries, keep.Rows, keep.Pages)
		}
	}
}
