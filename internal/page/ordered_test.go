package page

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"samplecf/internal/rng"
)

func TestInsertAtOrdering(t *testing.T) {
	p := New(MinSize, 1)
	// Insert out of order via positions, expect slot order = logical order.
	if err := p.InsertAt(0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertAt(1, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertAt(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertAt(2, []byte("c")); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	for i, w := range want {
		rec, err := p.Record(i)
		if err != nil || string(rec) != w {
			t.Fatalf("slot %d = %q (%v), want %q", i, rec, err, w)
		}
	}
}

func TestInsertAtBounds(t *testing.T) {
	p := New(MinSize, 1)
	if err := p.InsertAt(-1, []byte("x")); !errors.Is(err, ErrBadSlot) {
		t.Errorf("InsertAt(-1): %v", err)
	}
	if err := p.InsertAt(1, []byte("x")); !errors.Is(err, ErrBadSlot) {
		t.Errorf("InsertAt past end: %v", err)
	}
	if err := p.InsertAt(0, make([]byte, MinSize)); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("oversized: %v", err)
	}
}

func TestRemoveAt(t *testing.T) {
	p := New(MinSize, 1)
	for _, s := range []string{"a", "b", "c", "d"} {
		if err := p.InsertAt(p.NumSlots(), []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.RemoveAt(1); err != nil { // remove "b"
		t.Fatal(err)
	}
	want := []string{"a", "c", "d"}
	if p.NumSlots() != 3 {
		t.Fatalf("NumSlots = %d", p.NumSlots())
	}
	for i, w := range want {
		rec, err := p.Record(i)
		if err != nil || string(rec) != w {
			t.Fatalf("slot %d = %q (%v), want %q", i, rec, err, w)
		}
	}
	if err := p.RemoveAt(3); !errors.Is(err, ErrBadSlot) {
		t.Errorf("RemoveAt out of range: %v", err)
	}
	if err := p.RemoveAt(-1); !errors.Is(err, ErrBadSlot) {
		t.Errorf("RemoveAt(-1): %v", err)
	}
}

func TestRemoveAtThenCompactReclaims(t *testing.T) {
	p := New(MinSize, 1)
	for i := 0; i < 6; i++ {
		if err := p.InsertAt(i, bytes.Repeat([]byte{byte('a' + i)}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	free := p.FreeSpace()
	if err := p.RemoveAt(0); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveAt(0); err != nil {
		t.Fatal(err)
	}
	p.Compact()
	if p.FreeSpace() <= free {
		t.Fatalf("compact after RemoveAt reclaimed nothing: %d <= %d", p.FreeSpace(), free)
	}
	// Remaining records intact and still ordered.
	for i := 0; i < 4; i++ {
		rec, err := p.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		if rec[0] != byte('a'+i+2) {
			t.Fatalf("slot %d = %c, want %c", i, rec[0], 'a'+i+2)
		}
	}
}

// TestPropertyOrderedMaintenance models a sorted-array structure on a page:
// random ordered inserts and removals must match a reference slice.
func TestPropertyOrderedMaintenance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := New(2048, 1)
		var model []string
		for op := 0; op < 200; op++ {
			if r.Intn(3) != 0 || len(model) == 0 {
				// Insert a random short string at its sorted position.
				s := string([]byte{byte('a' + r.Intn(26)), byte('a' + r.Intn(26))})
				pos := sort.SearchStrings(model, s)
				err := p.InsertAt(pos, []byte(s))
				if errors.Is(err, ErrPageFull) {
					continue
				}
				if err != nil {
					return false
				}
				model = append(model, "")
				copy(model[pos+1:], model[pos:])
				model[pos] = s
			} else {
				pos := r.Intn(len(model))
				if err := p.RemoveAt(pos); err != nil {
					return false
				}
				model = append(model[:pos], model[pos+1:]...)
			}
			if p.NumSlots() != len(model) {
				return false
			}
			for i, w := range model {
				rec, err := p.Record(i)
				if err != nil || string(rec) != w {
					return false
				}
			}
			// Model must stay sorted if the page mirrors sorted inserts.
			if !sort.StringsAreSorted(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
