// Package page implements fixed-size slotted pages, the storage unit shared
// by heap files, B+-tree nodes, and the compression codecs.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       2     magic (0x5047, "PG")
//	2       2     flags (bit 0: compressed payload)
//	4       8     page id
//	12      2     slot count
//	14      2     free-space start (end of slot directory, grows up)
//	16      2     free-space end   (start of record heap, grows down)
//	18      4     CRC-32C checksum of the page with this field zeroed
//	22      2     reserved
//	24      ...   slot directory: per slot {offset uint16, length uint16}
//	...     ...   free space
//	...     end   record heap (grows downward from the end of the page)
//
// A deleted record leaves a tombstone slot (offset = 0); Compact reclaims the
// heap space while preserving slot numbers, mirroring how real engines keep
// RIDs stable.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// DefaultSize is the default page size in bytes (8 KiB, the SQL Server page
// size the paper's in-lined dictionaries live in).
const DefaultSize = 8192

// MinSize and MaxSize bound supported page sizes.
const (
	MinSize = 512
	MaxSize = 32 * 1024 // slot offsets and free pointers must fit in uint16
)

// HeaderSize is the fixed page header size in bytes.
const HeaderSize = 24

// slotSize is the size of one slot directory entry.
const slotSize = 4

const magic = 0x5047

// Header field offsets.
const (
	offMagic     = 0
	offFlags     = 2
	offPageID    = 4
	offNumSlots  = 12
	offFreeStart = 14
	offFreeEnd   = 16
	offChecksum  = 18
)

// Flag bits.
const (
	// FlagCompressed marks pages whose record payloads are codec-encoded.
	FlagCompressed uint16 = 1 << 0
)

// Exported errors.
var (
	// ErrPageFull is returned by Insert when the record cannot fit.
	ErrPageFull = errors.New("page: full")
	// ErrRecordTooLarge is returned when a record can never fit in an empty
	// page of this size.
	ErrRecordTooLarge = errors.New("page: record larger than page capacity")
	// ErrBadSlot is returned for out-of-range or tombstoned slots.
	ErrBadSlot = errors.New("page: invalid slot")
	// ErrCorrupt is returned by FromBytes when magic or checksum mismatch.
	ErrCorrupt = errors.New("page: corrupt")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Page is a single slotted page. The zero value is not usable; construct via
// New or FromBytes.
type Page struct {
	buf []byte
}

// New returns an empty page of the given size with the given id.
// It panics if size is out of [MinSize, MaxSize].
func New(size int, id uint64) *Page {
	if size < MinSize || size > MaxSize {
		panic(fmt.Sprintf("page: size %d outside [%d,%d]", size, MinSize, MaxSize))
	}
	p := &Page{buf: make([]byte, size)}
	binary.LittleEndian.PutUint16(p.buf[offMagic:], magic)
	binary.LittleEndian.PutUint64(p.buf[offPageID:], id)
	p.setNumSlots(0)
	p.setFreeStart(HeaderSize)
	p.setFreeEndInt(size)
	return p
}

// FromBytes wraps an existing serialized page, verifying magic and checksum.
// The page takes ownership of buf.
func FromBytes(buf []byte) (*Page, error) {
	if len(buf) < MinSize || len(buf) > MaxSize {
		return nil, fmt.Errorf("%w: bad length %d", ErrCorrupt, len(buf))
	}
	if binary.LittleEndian.Uint16(buf[offMagic:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	stored := binary.LittleEndian.Uint32(buf[offChecksum:])
	p := &Page{buf: buf}
	if stored != p.computeChecksum() {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return p, nil
}

// Size returns the page size in bytes.
func (p *Page) Size() int { return len(p.buf) }

// ID returns the page id stored in the header.
func (p *Page) ID() uint64 { return binary.LittleEndian.Uint64(p.buf[offPageID:]) }

// SetID updates the page id.
func (p *Page) SetID(id uint64) { binary.LittleEndian.PutUint64(p.buf[offPageID:], id) }

// Flags returns the header flag bits.
func (p *Page) Flags() uint16 { return binary.LittleEndian.Uint16(p.buf[offFlags:]) }

// SetFlags stores the header flag bits.
func (p *Page) SetFlags(f uint16) { binary.LittleEndian.PutUint16(p.buf[offFlags:], f) }

func (p *Page) numSlots() int      { return int(binary.LittleEndian.Uint16(p.buf[offNumSlots:])) }
func (p *Page) setNumSlots(n int)  { binary.LittleEndian.PutUint16(p.buf[offNumSlots:], uint16(n)) }
func (p *Page) freeStart() int     { return int(binary.LittleEndian.Uint16(p.buf[offFreeStart:])) }
func (p *Page) setFreeStart(v int) { binary.LittleEndian.PutUint16(p.buf[offFreeStart:], uint16(v)) }

// freeEnd is the exclusive offset where the record heap begins; it always
// fits in uint16 because MaxSize is 32 KiB.
func (p *Page) freeEnd() int {
	return int(binary.LittleEndian.Uint16(p.buf[offFreeEnd:]))
}

func (p *Page) setFreeEndInt(v int) {
	binary.LittleEndian.PutUint16(p.buf[offFreeEnd:], uint16(v))
}

// slotAt returns the directory entry for slot i (no bounds check).
func (p *Page) slotAt(i int) (off, length int) {
	base := HeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	base := HeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// NumSlots returns the total slot count, including tombstones.
func (p *Page) NumSlots() int { return p.numSlots() }

// NumRecords returns the number of live (non-deleted) records.
func (p *Page) NumRecords() int {
	n := 0
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slotAt(i); off != 0 {
			n++
		}
	}
	return n
}

// FreeSpace returns the bytes available for one more record including its
// slot entry. Negative results are clamped to zero.
func (p *Page) FreeSpace() int {
	free := p.freeEnd() - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Capacity returns the maximum record payload an empty page of this size can
// hold.
func (p *Page) Capacity() int { return len(p.buf) - HeaderSize - slotSize }

// Insert stores rec in the page and returns its slot number.
// It returns ErrPageFull if the record does not fit in the remaining free
// space, or ErrRecordTooLarge if it could never fit.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > p.Capacity() {
		return 0, fmt.Errorf("%w: %d > %d", ErrRecordTooLarge, len(rec), p.Capacity())
	}
	// Use the unclamped free computation: FreeSpace() clamps negatives to 0,
	// which would let a zero-length record in with no room for its slot entry.
	if len(rec) > p.freeEnd()-p.freeStart()-slotSize {
		return 0, ErrPageFull
	}
	slot := p.numSlots()
	newEnd := p.freeEnd() - len(rec)
	copy(p.buf[newEnd:], rec)
	p.setFreeEndInt(newEnd)
	p.setSlot(slot, newEnd, len(rec))
	p.setNumSlots(slot + 1)
	p.setFreeStart(HeaderSize + (slot+1)*slotSize)
	return slot, nil
}

// InsertAt stores rec at slot position i, shifting later slots up by one.
// It is used by ordered structures (B+-tree nodes) that maintain key order
// via slot order; heap files use Insert, which keeps RIDs stable instead.
// i must be in [0, NumSlots()].
func (p *Page) InsertAt(i int, rec []byte) error {
	n := p.numSlots()
	if i < 0 || i > n {
		return fmt.Errorf("%w: insert position %d of %d", ErrBadSlot, i, n)
	}
	if len(rec) > p.Capacity() {
		return fmt.Errorf("%w: %d > %d", ErrRecordTooLarge, len(rec), p.Capacity())
	}
	if len(rec) > p.freeEnd()-p.freeStart()-slotSize {
		return ErrPageFull
	}
	newEnd := p.freeEnd() - len(rec)
	copy(p.buf[newEnd:], rec)
	p.setFreeEndInt(newEnd)
	// Shift slot directory entries [i, n) up one position.
	base := HeaderSize + i*slotSize
	copy(p.buf[base+slotSize:HeaderSize+(n+1)*slotSize], p.buf[base:HeaderSize+n*slotSize])
	p.setSlot(i, newEnd, len(rec))
	p.setNumSlots(n + 1)
	p.setFreeStart(HeaderSize + (n+1)*slotSize)
	return nil
}

// RemoveAt deletes slot i entirely, shifting later slots down by one.
// Unlike Delete it does not leave a tombstone; the record heap space is
// reclaimed by the next Compact.
func (p *Page) RemoveAt(i int) error {
	n := p.numSlots()
	if i < 0 || i >= n {
		return fmt.Errorf("%w: remove position %d of %d", ErrBadSlot, i, n)
	}
	base := HeaderSize + i*slotSize
	copy(p.buf[base:HeaderSize+(n-1)*slotSize], p.buf[base+slotSize:HeaderSize+n*slotSize])
	p.setNumSlots(n - 1)
	p.setFreeStart(HeaderSize + (n-1)*slotSize)
	return nil
}

// Record returns the payload of slot i. The returned slice aliases the page
// buffer; callers must copy if they mutate or retain it across page writes.
func (p *Page) Record(i int) ([]byte, error) {
	if i < 0 || i >= p.numSlots() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.numSlots())
	}
	off, length := p.slotAt(i)
	if off == 0 {
		return nil, fmt.Errorf("%w: %d deleted", ErrBadSlot, i)
	}
	return p.buf[off : off+length], nil
}

// Delete tombstones slot i. The slot number remains allocated (RID
// stability); the record bytes are reclaimed by the next Compact.
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.numSlots() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.numSlots())
	}
	if off, _ := p.slotAt(i); off == 0 {
		return fmt.Errorf("%w: %d already deleted", ErrBadSlot, i)
	}
	p.setSlot(i, 0, 0)
	return nil
}

// Compact rewrites the record heap to squeeze out space freed by Delete,
// preserving slot numbers. It runs in O(page size) with a single scratch
// buffer.
func (p *Page) Compact() {
	size := len(p.buf)
	scratch := make([]byte, 0, size)
	type live struct{ slot, length int }
	var lives []live
	for i := 0; i < p.numSlots(); i++ {
		off, length := p.slotAt(i)
		if off == 0 {
			continue
		}
		scratch = append(scratch, p.buf[off:off+length]...)
		lives = append(lives, live{i, length})
	}
	// Re-lay the records from the end of the page.
	end := size
	consumed := 0
	for _, lv := range lives {
		end -= lv.length
		copy(p.buf[end:], scratch[consumed:consumed+lv.length])
		p.setSlot(lv.slot, end, lv.length)
		consumed += lv.length
	}
	p.setFreeEndInt(end)
}

// UsedBytes returns the storage accounted to this page for compression-
// fraction purposes: header, slot directory, and live record payloads.
func (p *Page) UsedBytes() int {
	used := HeaderSize + p.numSlots()*slotSize
	for i := 0; i < p.numSlots(); i++ {
		if off, length := p.slotAt(i); off != 0 {
			used += length
		}
	}
	return used
}

// computeChecksum hashes the page with the checksum field treated as zero.
func (p *Page) computeChecksum() uint32 {
	h := crc32.New(crcTable)
	h.Write(p.buf[:offChecksum])
	var zero [4]byte
	h.Write(zero[:])
	h.Write(p.buf[offChecksum+4:])
	return h.Sum32()
}

// Seal updates the checksum and returns the serialized page. The returned
// slice aliases the page buffer.
func (p *Page) Seal() []byte {
	binary.LittleEndian.PutUint32(p.buf[offChecksum:], p.computeChecksum())
	return p.buf
}

// Records iterates over live records in slot order, invoking fn with the
// slot number and payload. Iteration stops early if fn returns an error,
// which is then returned.
func (p *Page) Records(fn func(slot int, rec []byte) error) error {
	for i := 0; i < p.numSlots(); i++ {
		off, length := p.slotAt(i)
		if off == 0 {
			continue
		}
		if err := fn(i, p.buf[off:off+length]); err != nil {
			return err
		}
	}
	return nil
}
