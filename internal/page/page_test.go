package page

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"samplecf/internal/rng"
)

func TestNewPageEmpty(t *testing.T) {
	p := New(DefaultSize, 7)
	if p.Size() != DefaultSize {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.ID() != 7 {
		t.Fatalf("ID = %d", p.ID())
	}
	if p.NumSlots() != 0 || p.NumRecords() != 0 {
		t.Fatal("new page not empty")
	}
	if got, want := p.FreeSpace(), DefaultSize-HeaderSize-slotSize; got != want {
		t.Fatalf("FreeSpace = %d, want %d", got, want)
	}
	if got, want := p.UsedBytes(), HeaderSize; got != want {
		t.Fatalf("UsedBytes = %d, want %d", got, want)
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, MinSize - 1, MaxSize + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", size)
				}
			}()
			New(size, 0)
		}()
	}
}

func TestInsertAndRecord(t *testing.T) {
	p := New(MinSize, 1)
	recs := [][]byte{[]byte("hello"), []byte(""), []byte("world!")}
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Record(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("slot %d: got %q want %q", s, got, recs[i])
		}
	}
	if p.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", p.NumRecords())
	}
}

func TestInsertUntilFull(t *testing.T) {
	p := New(MinSize, 1)
	rec := make([]byte, 32)
	inserted := 0
	for {
		_, err := p.Insert(rec)
		if errors.Is(err, ErrPageFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		inserted++
		if inserted > MinSize {
			t.Fatal("page never filled")
		}
	}
	// Each record costs 32 + 4 slot bytes.
	want := (MinSize - HeaderSize) / (32 + slotSize)
	if inserted != want {
		t.Errorf("inserted %d records, want %d", inserted, want)
	}
	// Accounting must close: used + free ≈ size.
	if p.FreeSpace() >= 32+slotSize {
		t.Errorf("free space %d still fits a record", p.FreeSpace())
	}
}

func TestInsertRecordTooLarge(t *testing.T) {
	p := New(MinSize, 1)
	_, err := p.Insert(make([]byte, MinSize))
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	// Exactly capacity must fit.
	if _, err := p.Insert(make([]byte, p.Capacity())); err != nil {
		t.Fatalf("capacity-size record rejected: %v", err)
	}
}

func TestDeleteAndTombstones(t *testing.T) {
	p := New(MinSize, 1)
	s0, _ := p.Insert([]byte("aaaa"))
	s1, _ := p.Insert([]byte("bbbb"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Record(s0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("deleted record readable: %v", err)
	}
	if err := p.Delete(s0); !errors.Is(err, ErrBadSlot) {
		t.Fatal("double delete accepted")
	}
	if err := p.Delete(99); !errors.Is(err, ErrBadSlot) {
		t.Fatal("out-of-range delete accepted")
	}
	if p.NumRecords() != 1 || p.NumSlots() != 2 {
		t.Fatalf("NumRecords=%d NumSlots=%d", p.NumRecords(), p.NumSlots())
	}
	// s1 still readable.
	if rec, err := p.Record(s1); err != nil || !bytes.Equal(rec, []byte("bbbb")) {
		t.Fatalf("surviving record corrupted: %q %v", rec, err)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	p := New(MinSize, 1)
	var slots []int
	for i := 0; i < 8; i++ {
		s, err := p.Insert([]byte(fmt.Sprintf("record-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	freeBefore := p.FreeSpace()
	// Delete every other record.
	for i := 0; i < 8; i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	p.Compact()
	if p.FreeSpace() <= freeBefore {
		t.Errorf("compact did not reclaim: before %d after %d", freeBefore, p.FreeSpace())
	}
	// Surviving records intact, same slot numbers.
	for i := 1; i < 8; i += 2 {
		rec, err := p.Record(slots[i])
		if err != nil {
			t.Fatalf("slot %d unreadable after compact: %v", slots[i], err)
		}
		if want := fmt.Sprintf("record-%02d", i); string(rec) != want {
			t.Errorf("slot %d = %q, want %q", slots[i], rec, want)
		}
	}
}

func TestSealFromBytesRoundTrip(t *testing.T) {
	p := New(DefaultSize, 42)
	p.SetFlags(FlagCompressed)
	if _, err := p.Insert([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), p.Seal()...)
	q, err := FromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID() != 42 || q.Flags() != FlagCompressed || q.NumRecords() != 1 {
		t.Fatal("round trip lost header state")
	}
	rec, err := q.Record(0)
	if err != nil || string(rec) != "payload" {
		t.Fatalf("record lost: %q %v", rec, err)
	}
}

func TestFromBytesDetectsCorruption(t *testing.T) {
	p := New(DefaultSize, 1)
	if _, err := p.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), p.Seal()...)

	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := FromBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip not detected: %v", err)
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0
	if _, err := FromBytes(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic not detected: %v", err)
	}

	if _, err := FromBytes(make([]byte, 10)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short buffer not detected: %v", err)
	}
}

func TestRecordsIteration(t *testing.T) {
	p := New(MinSize, 1)
	for i := 0; i < 5; i++ {
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Delete(2); err != nil {
		t.Fatal(err)
	}
	var seen []int
	err := p.Records(func(slot int, rec []byte) error {
		if int(rec[0]) != slot {
			t.Errorf("slot %d has record %d", slot, rec[0])
		}
		seen = append(seen, slot)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if len(seen) != len(want) {
		t.Fatalf("visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("visited %v, want %v", seen, want)
		}
	}
	// Early stop propagates error.
	sentinel := errors.New("stop")
	if err := p.Records(func(int, []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatal("Records did not propagate error")
	}
}

func TestUsedBytesAccounting(t *testing.T) {
	p := New(MinSize, 1)
	if _, err := p.Insert(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	want := HeaderSize + 2*slotSize + 150
	if got := p.UsedBytes(); got != want {
		t.Fatalf("UsedBytes = %d, want %d", got, want)
	}
	if err := p.Delete(0); err != nil {
		t.Fatal(err)
	}
	want = HeaderSize + 2*slotSize + 50
	if got := p.UsedBytes(); got != want {
		t.Fatalf("UsedBytes after delete = %d, want %d", got, want)
	}
}

// TestPropertyInsertDeleteCompact drives a random operation sequence against
// a model (a Go map) and checks the page always agrees with the model.
func TestPropertyInsertDeleteCompact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := New(1024, 1)
		model := map[int][]byte{} // slot -> payload
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0, 1: // insert
				rec := make([]byte, r.Intn(40))
				for i := range rec {
					rec[i] = byte(r.Intn(256))
				}
				slot, err := p.Insert(rec)
				if errors.Is(err, ErrPageFull) {
					continue
				}
				if err != nil {
					t.Logf("insert error: %v", err)
					return false
				}
				model[slot] = append([]byte(nil), rec...)
			case 2: // delete a random live slot
				for slot := range model {
					if err := p.Delete(slot); err != nil {
						t.Logf("delete error: %v", err)
						return false
					}
					delete(model, slot)
					break
				}
			case 3:
				p.Compact()
			}
			// Invariant: every model record is readable and equal.
			for slot, want := range model {
				got, err := p.Record(slot)
				if err != nil || !bytes.Equal(got, want) {
					t.Logf("slot %d mismatch: %q vs %q (%v)", slot, got, want, err)
					return false
				}
			}
			if p.NumRecords() != len(model) {
				t.Logf("NumRecords %d != model %d", p.NumRecords(), len(model))
				return false
			}
		}
		// Final: seal + reload preserves everything.
		q, err := FromBytes(append([]byte(nil), p.Seal()...))
		if err != nil {
			t.Logf("reload: %v", err)
			return false
		}
		for slot, want := range model {
			got, err := q.Record(slot)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert64B(b *testing.B) {
	rec := make([]byte, 64)
	p := New(DefaultSize, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Insert(rec); err != nil {
			p = New(DefaultSize, 1)
		}
	}
}

func BenchmarkSeal8K(b *testing.B) {
	p := New(DefaultSize, 1)
	for {
		if _, err := p.Insert(make([]byte, 64)); err != nil {
			break
		}
	}
	b.SetBytes(DefaultSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seal()
	}
}
