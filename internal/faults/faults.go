// Package faults is a deterministic, seed-driven fault-injection registry
// for chaos testing the serving path. Production code registers named
// injection points (Register) and consults them at failure-prone sites
// (Point.Check / Point.Check1); tests arm a replayable schedule string
// (Arm) that makes chosen points return errors, panic, or stall for a
// fixed latency on exact, deterministic hits.
//
// The design contract is the same as the obs package's nil-safe
// instruments: a disarmed point costs one atomic pointer load and nothing
// else — no allocation, no branch on shared mutable state, no lock — so
// the checks can live on the estimation hot path permanently rather than
// behind build tags. Armed behavior is fully determined by (schedule,
// seed, per-clause hit counts): replaying the same schedule against the
// same workload fires the same faults in the same order.
//
// Schedule grammar (clauses joined by ';'):
//
//	clause  := point [ '[' arg ']' ] ':' kind trigger
//	kind    := 'err' | 'panic' | 'lat:' duration
//	trigger := '@' N            fire on the Nth matching hit
//	         | '@' N '+'        fire on every hit from the Nth on (persistent)
//	         | '@' N ',' M ...  fire on each listed hit
//	         | '@every' N       fire on every Nth hit
//	         | '%' P            fire with probability P% (seeded, deterministic)
//
// Examples:
//
//	sampling.draw:err@1               first draw fails (transient)
//	engine.scatter[1]:err@1+          shard 1 fails persistently
//	compress.encode:panic@3           third page encode panics
//	heap.scan:lat:5ms@every10         every 10th page read stalls 5ms
//	sampling.draw:err%20              20% of draws fail, seeded
//
// The '[arg]' filter scopes a clause to calls carrying that argument
// (Check1's arg — e.g. a shard index); its hit counter then counts only
// matching calls, so per-shard schedules stay deterministic even when
// shards run in parallel.
package faults

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the effect an armed clause has when it fires.
type Kind uint8

const (
	// KindError makes Check return an *InjectedError.
	KindError Kind = iota + 1
	// KindPanic makes Check panic with an *InjectedPanic.
	KindPanic
	// KindLatency makes Check sleep for the clause's duration, then
	// continue (Check returns nil unless another clause also fires).
	KindLatency
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "err"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "lat"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ErrInjected is the sentinel every injected fault matches via errors.Is —
// tests assert "this failure was mine" without string matching.
var ErrInjected = errors.New("injected fault")

// InjectedError is the error an armed KindError clause returns.
type InjectedError struct {
	Point string
	Hit   uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected error at %s (hit %d)", e.Point, e.Hit)
}

// Is matches ErrInjected.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// InjectedPanic is the value an armed KindPanic clause panics with.
type InjectedPanic struct {
	Point string
	Hit   uint64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (hit %d)", p.Point, p.Hit)
}

// PanicError is a recovered panic converted into an error: the recovery
// sites on the serving path (engine pool workers, workgroup fan-outs,
// per-shard scatter goroutines) wrap whatever they recover in one of
// these so the failure carries the injection point (when the panic was
// injected) and the goroutine stack to the caller.
type PanicError struct {
	// Point is the injection point that fired, or "" for an organic panic.
	Point string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Point != "" {
		return fmt.Sprintf("panic recovered (injected at %s): %v", e.Point, e.Value)
	}
	return fmt.Sprintf("panic recovered: %v", e.Value)
}

// Is matches ErrInjected when the panic was injected.
func (e *PanicError) Is(target error) bool { return target == ErrInjected && e.Point != "" }

// AsError converts a recovered panic value into a *PanicError, capturing
// the current goroutine's stack. Call it from inside the deferred recovery
// function, on the goroutine that panicked, so the stack is the panicking
// one. A value that already is a *PanicError passes through unchanged
// (re-panics across goroutine boundaries keep the original stack).
func AsError(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	pe := &PanicError{Value: r, Stack: debug.Stack()}
	if ip, ok := r.(*InjectedPanic); ok {
		pe.Point = ip.Point
	}
	return pe
}

// Firing records one fault that fired; the ledger (Fired) makes chaos runs
// comparable: same schedule + same seed + same workload ⇒ same firings.
type Firing struct {
	Point string
	// Arg is the Check1 argument of the firing call, -1 for plain Check.
	Arg int64
	// Hit is the clause-local hit count at which the fault fired.
	Hit  uint64
	Kind Kind
}

// trigMode discriminates a clause's trigger.
type trigMode uint8

const (
	trigList trigMode = iota + 1
	trigFrom
	trigEvery
	trigProb
)

// clause is one parsed schedule clause.
type clause struct {
	point string
	arg   int64 // -1 = any
	kind  Kind
	delay time.Duration

	trig    trigMode
	hits    []uint64 // trigList
	from    uint64   // trigFrom
	every   uint64   // trigEvery
	percent uint64   // trigProb, 1..100
}

func (c *clause) render(b *strings.Builder) {
	b.WriteString(c.point)
	if c.arg >= 0 {
		fmt.Fprintf(b, "[%d]", c.arg)
	}
	b.WriteByte(':')
	switch c.kind {
	case KindError:
		b.WriteString("err")
	case KindPanic:
		b.WriteString("panic")
	case KindLatency:
		fmt.Fprintf(b, "lat:%s", c.delay)
	}
	switch c.trig {
	case trigList:
		b.WriteByte('@')
		for i, h := range c.hits {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%d", h)
		}
	case trigFrom:
		fmt.Fprintf(b, "@%d+", c.from)
	case trigEvery:
		fmt.Fprintf(b, "@every%d", c.every)
	case trigProb:
		fmt.Fprintf(b, "%%%d", c.percent)
	}
}

// fires reports whether the clause fires on its hit-th matching call.
func (c *clause) fires(hit, seed uint64) bool {
	switch c.trig {
	case trigList:
		for _, h := range c.hits {
			if h == hit {
				return true
			}
		}
		return false
	case trigFrom:
		return hit >= c.from
	case trigEvery:
		return hit%c.every == 0
	case trigProb:
		return splitmix(seed^hashString(c.point)^hit)%100 < c.percent
	default:
		return false
	}
}

// Schedule is a parsed fault schedule.
type Schedule struct {
	clauses []clause
}

// String renders the schedule in canonical form; Parse(s.String()) yields
// an equivalent schedule.
func (s *Schedule) String() string {
	var b strings.Builder
	for i := range s.clauses {
		if i > 0 {
			b.WriteByte(';')
		}
		s.clauses[i].render(&b)
	}
	return b.String()
}

// Parse parses a schedule string. It never panics on any input (fuzzed).
func Parse(s string) (*Schedule, error) {
	var sched Schedule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := parseClause(part)
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", part, err)
		}
		sched.clauses = append(sched.clauses, c)
	}
	if len(sched.clauses) == 0 {
		return nil, errors.New("faults: empty schedule")
	}
	return &sched, nil
}

func parseClause(s string) (clause, error) {
	c := clause{arg: -1}
	colon := strings.IndexByte(s, ':')
	if colon <= 0 {
		return c, errors.New("missing ':kind'")
	}
	pt, rest := s[:colon], s[colon+1:]
	if lb := strings.IndexByte(pt, '['); lb >= 0 {
		if !strings.HasSuffix(pt, "]") {
			return c, errors.New("unterminated '[' in arg filter")
		}
		arg, err := strconv.ParseUint(pt[lb+1:len(pt)-1], 10, 32)
		if err != nil {
			return c, fmt.Errorf("bad arg filter: %v", err)
		}
		c.arg = int64(arg)
		pt = pt[:lb]
	}
	if !validPointName(pt) {
		return c, fmt.Errorf("bad point name %q", pt)
	}
	c.point = pt
	switch {
	case strings.HasPrefix(rest, "err"):
		c.kind, rest = KindError, rest[len("err"):]
	case strings.HasPrefix(rest, "panic"):
		c.kind, rest = KindPanic, rest[len("panic"):]
	case strings.HasPrefix(rest, "lat:"):
		rest = rest[len("lat:"):]
		end := strings.IndexAny(rest, "@%")
		if end < 0 {
			return c, errors.New("latency clause missing trigger")
		}
		d, err := time.ParseDuration(rest[:end])
		if err != nil {
			return c, fmt.Errorf("bad latency duration: %v", err)
		}
		if d < 0 {
			return c, fmt.Errorf("negative latency %s", d)
		}
		c.kind, c.delay, rest = KindLatency, d, rest[end:]
	default:
		return c, errors.New("unknown kind (want err, panic, or lat:<duration>)")
	}
	if rest == "" {
		return c, errors.New("missing trigger ('@N', '@N+', '@N,M', '@everyN', or '%P')")
	}
	switch rest[0] {
	case '%':
		p, err := strconv.ParseUint(rest[1:], 10, 8)
		if err != nil || p == 0 || p > 100 {
			return c, fmt.Errorf("bad probability %q (want 1..100)", rest[1:])
		}
		c.trig, c.percent = trigProb, p
	case '@':
		spec := rest[1:]
		switch {
		case strings.HasPrefix(spec, "every"):
			n, err := strconv.ParseUint(spec[len("every"):], 10, 32)
			if err != nil || n == 0 {
				return c, fmt.Errorf("bad period %q (want @everyN, N ≥ 1)", spec)
			}
			c.trig, c.every = trigEvery, n
		case strings.HasSuffix(spec, "+"):
			n, err := strconv.ParseUint(spec[:len(spec)-1], 10, 64)
			if err != nil || n == 0 {
				return c, fmt.Errorf("bad hit %q (want @N+, N ≥ 1)", spec)
			}
			c.trig, c.from = trigFrom, n
		default:
			for _, f := range strings.Split(spec, ",") {
				n, err := strconv.ParseUint(f, 10, 64)
				if err != nil || n == 0 {
					return c, fmt.Errorf("bad hit %q (want positive integers)", f)
				}
				c.hits = append(c.hits, n)
			}
			c.trig = trigList
		}
	default:
		return c, fmt.Errorf("bad trigger %q", rest)
	}
	return c, nil
}

// validPointName accepts dotted identifiers: letters, digits, '.', '_',
// '-', starting with a letter.
func validPointName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z':
		case i > 0 && (b >= '0' && b <= '9' || b == '.' || b == '_' || b == '-'):
		default:
			return false
		}
	}
	return true
}

// armedClause is one clause plus its private hit counter, reset by Arm.
type armedClause struct {
	clause
	count atomic.Uint64
}

// program is the armed state of one point: the clauses targeting it plus
// the schedule seed. Swapped atomically so Check never locks.
type program struct {
	clauses []*armedClause
	seed    uint64
}

// Point is one named injection site. The zero disarmed state — and a nil
// *Point — make Check a single atomic load returning nil.
type Point struct {
	name string
	prog atomic.Pointer[program]
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Check consults the point with no call argument: armed clauses without an
// arg filter match. It returns an *InjectedError, panics with an
// *InjectedPanic, sleeps, or — the overwhelmingly common disarmed case —
// returns nil after one atomic load.
func (p *Point) Check() error {
	if p == nil {
		return nil
	}
	prog := p.prog.Load()
	if prog == nil {
		return nil
	}
	return p.fire(prog, -1)
}

// Check1 consults the point with a call argument (e.g. a shard index):
// clauses with a matching arg filter — and clauses with none — match.
func (p *Point) Check1(arg uint64) error {
	if p == nil {
		return nil
	}
	prog := p.prog.Load()
	if prog == nil {
		return nil
	}
	return p.fire(prog, int64(arg))
}

func (p *Point) fire(prog *program, arg int64) error {
	for _, c := range prog.clauses {
		if c.arg >= 0 && c.arg != arg {
			continue
		}
		hit := c.count.Add(1)
		if !c.fires(hit, prog.seed) {
			continue
		}
		record(Firing{Point: p.name, Arg: arg, Hit: hit, Kind: c.kind})
		switch c.kind {
		case KindLatency:
			time.Sleep(c.delay)
		case KindPanic:
			panic(&InjectedPanic{Point: p.name, Hit: hit})
		default:
			return &InjectedError{Point: p.name, Hit: hit}
		}
	}
	return nil
}

// registry is the process-global point set plus the firing ledger.
var registry = struct {
	mu     sync.Mutex
	points map[string]*Point

	firedMu sync.Mutex
	fired   []Firing
}{points: make(map[string]*Point)}

func record(f Firing) {
	registry.firedMu.Lock()
	registry.fired = append(registry.fired, f)
	registry.firedMu.Unlock()
}

// Register returns the point named name, creating it disarmed on first
// use. Registration is idempotent: every call with the same name returns
// the same Point, so package-level `var p = faults.Register(...)` sites
// across packages share one switchboard.
func Register(name string) *Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if p, ok := registry.points[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry.points[name] = p
	return p
}

// Points lists every registered point name, sorted — the chaos suite
// iterates this to prove each point has error and panic coverage.
func Points() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.points))
	for n := range registry.points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Arm parses schedule and arms the points it names, disarming every other
// point and clearing the firing ledger and all hit counters — one Arm call
// defines one complete, reproducible chaos scenario. A clause naming an
// unregistered point is an error (it would silently never fire).
func Arm(schedule string, seed uint64) error {
	sched, err := Parse(schedule)
	if err != nil {
		return err
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	byPoint := make(map[string][]clause)
	for _, c := range sched.clauses {
		if _, ok := registry.points[c.point]; !ok {
			return fmt.Errorf("faults: unregistered injection point %q", c.point)
		}
		byPoint[c.point] = append(byPoint[c.point], c)
	}
	registry.firedMu.Lock()
	registry.fired = nil
	registry.firedMu.Unlock()
	for name, p := range registry.points {
		cs, ok := byPoint[name]
		if !ok {
			p.prog.Store(nil)
			continue
		}
		prog := &program{seed: seed, clauses: make([]*armedClause, len(cs))}
		for i, c := range cs {
			prog.clauses[i] = &armedClause{clause: c}
		}
		p.prog.Store(prog)
	}
	return nil
}

// Disarm returns every point to the zero-cost disarmed state. The firing
// ledger survives so tests can assert on it after disarming.
func Disarm() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, p := range registry.points {
		p.prog.Store(nil)
	}
}

// Fired returns a copy of the firing ledger accumulated since the last
// Arm. Order reflects real interleaving; replay comparisons across
// parallel runs should sort first.
func Fired() []Firing {
	registry.firedMu.Lock()
	defer registry.firedMu.Unlock()
	out := make([]Firing, len(registry.fired))
	copy(out, registry.fired)
	return out
}

// splitmix is splitmix64: the probability trigger's per-hit coin, fully
// determined by (seed, point, hit).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
