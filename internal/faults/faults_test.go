package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Points in this file use test-local names so they never collide with the
// production points other packages register.

func TestDisarmedIsNil(t *testing.T) {
	p := Register("test.disarmed")
	if err := p.Check(); err != nil {
		t.Fatalf("disarmed Check: %v", err)
	}
	if err := p.Check1(7); err != nil {
		t.Fatalf("disarmed Check1: %v", err)
	}
	var nilPoint *Point
	if err := nilPoint.Check(); err != nil {
		t.Fatalf("nil point Check: %v", err)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	a := Register("test.same")
	b := Register("test.same")
	if a != b {
		t.Fatal("Register returned distinct points for one name")
	}
}

func TestErrorOnNthHit(t *testing.T) {
	p := Register("test.nth")
	if err := Arm("test.nth:err@3", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	for i := 1; i <= 5; i++ {
		err := p.Check()
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want injected error, got %v", i, err)
			}
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Point != "test.nth" || ie.Hit != 3 {
				t.Fatalf("hit %d: wrong error detail: %#v", i, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
}

func TestPersistentFrom(t *testing.T) {
	p := Register("test.from")
	if err := Arm("test.from:err@2+", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	if err := p.Check(); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	for i := 2; i <= 4; i++ {
		if err := p.Check(); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: want persistent error, got %v", i, err)
		}
	}
}

func TestHitList(t *testing.T) {
	p := Register("test.list")
	if err := Arm("test.list:err@1,4", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	var fired []int
	for i := 1; i <= 5; i++ {
		if p.Check() != nil {
			fired = append(fired, i)
		}
	}
	if fmt.Sprint(fired) != "[1 4]" {
		t.Fatalf("fired on hits %v, want [1 4]", fired)
	}
}

func TestEveryN(t *testing.T) {
	p := Register("test.every")
	if err := Arm("test.every:err@every3", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	var fired []int
	for i := 1; i <= 9; i++ {
		if p.Check() != nil {
			fired = append(fired, i)
		}
	}
	if fmt.Sprint(fired) != "[3 6 9]" {
		t.Fatalf("fired on hits %v, want [3 6 9]", fired)
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	p := Register("test.prob")
	run := func(seed uint64) []int {
		if err := Arm("test.prob:err%30", seed); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 1; i <= 200; i++ {
			if p.Check() != nil {
				fired = append(fired, i)
			}
		}
		Disarm()
		return fired
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different firings:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("30%% trigger fired %d/200 times", len(a))
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical firings (suspicious)")
	}
}

func TestArgFilter(t *testing.T) {
	p := Register("test.arg")
	if err := Arm("test.arg[2]:err@1+", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	if err := p.Check1(1); err != nil {
		t.Fatalf("arg 1: %v", err)
	}
	if err := p.Check(); err != nil {
		t.Fatalf("no arg: %v", err)
	}
	if err := p.Check1(2); !errors.Is(err, ErrInjected) {
		t.Fatalf("arg 2: want injected, got %v", err)
	}
	// The filtered clause's counter only counts matching calls.
	if err := p.Check1(2); !errors.Is(err, ErrInjected) {
		t.Fatalf("arg 2 again: want injected, got %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	p := Register("test.panic")
	if err := Arm("test.panic:panic@1", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = p.Check()
	}()
	ip, ok := recovered.(*InjectedPanic)
	if !ok || ip.Point != "test.panic" {
		t.Fatalf("recovered %#v, want *InjectedPanic at test.panic", recovered)
	}
	pe := AsError(recovered)
	if pe.Point != "test.panic" || !errors.Is(pe, ErrInjected) || len(pe.Stack) == 0 {
		t.Fatalf("AsError: %#v", pe)
	}
}

func TestLatencyKind(t *testing.T) {
	p := Register("test.lat")
	if err := Arm("test.lat:lat:30ms@1", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	t0 := time.Now()
	if err := p.Check(); err != nil {
		t.Fatalf("latency clause returned error: %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("latency clause stalled only %v", d)
	}
}

func TestFiredLedgerAndReplay(t *testing.T) {
	p := Register("test.ledger")
	drive := func() []Firing {
		if err := Arm("test.ledger:err@2;test.ledger:panic@4", 9); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			func() {
				defer func() { recover() }()
				_ = p.Check()
			}()
		}
		Disarm()
		return Fired()
	}
	a, b := drive(), drive()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("replay diverged:\n%v\n%v", a, b)
	}
	if len(a) != 2 || a[0].Kind != KindError || a[0].Hit != 2 || a[1].Kind != KindPanic || a[1].Hit != 4 {
		t.Fatalf("ledger: %v", a)
	}
}

func TestArmUnregisteredPoint(t *testing.T) {
	if err := Arm("test.never-registered-xyz:err@1", 1); err == nil {
		Disarm()
		t.Fatal("Arm accepted an unregistered point")
	}
}

func TestArmDisarmsOthers(t *testing.T) {
	a := Register("test.swap-a")
	b := Register("test.swap-b")
	if err := Arm("test.swap-a:err@1+", 1); err != nil {
		t.Fatal(err)
	}
	if err := Arm("test.swap-b:err@1+", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	if err := a.Check(); err != nil {
		t.Fatalf("point a should have been disarmed by the second Arm: %v", err)
	}
	if err := b.Check(); !errors.Is(err, ErrInjected) {
		t.Fatalf("point b should be armed: %v", err)
	}
}

func TestConcurrentChecks(t *testing.T) {
	p := Register("test.concurrent")
	if err := Arm("test.concurrent:err@every7", 1); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	const goroutines, perG = 8, 700
	var wg sync.WaitGroup
	var hits sync.Map
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < perG; i++ {
				if p.Check() != nil {
					n++
				}
			}
			hits.Store(&n, n)
		}()
	}
	wg.Wait()
	total := 0
	hits.Range(func(_, v any) bool { total += v.(int); return true })
	if want := goroutines * perG / 7; total != want {
		t.Fatalf("every7 fired %d times across %d hits, want %d", total, goroutines*perG, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"", ";;", "nocolon", ":err@1", "p:@1", "p:err", "p:err@0", "p:err@",
		"p:err@x", "p:err@1,0", "p:err%0", "p:err%101", "p:err%x",
		"p:lat@1", "p:lat:xs@1", "p:lat:-5ms@1", "p:wat@1", "p[:err@1",
		"p[x]:err@1", "p:err@every0", "p:err@+", "1p:err@1", "p q:err@1",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestParseCanonicalRoundTrip(t *testing.T) {
	for _, s := range []string{
		"a.b:err@1", "a.b[3]:panic@2+", "a:lat:5ms@every10",
		"a:err%20", "a:err@1,2,9;b.c:panic@4",
	} {
		Register("a")
		Register("a.b")
		Register("b.c")
		sched, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		again, err := Parse(sched.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)=%q): %v", s, sched.String(), err)
		}
		if sched.String() != again.String() {
			t.Fatalf("round trip drifted: %q -> %q -> %q", s, sched.String(), again.String())
		}
	}
}
