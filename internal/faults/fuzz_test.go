package faults

import "testing"

// FuzzFaultSchedule drives the schedule parser with arbitrary input: it
// must never panic, and any schedule it accepts must render to a canonical
// form that re-parses to the same canonical form (so replaying a logged
// schedule is always possible).
func FuzzFaultSchedule(f *testing.F) {
	for _, seed := range []string{
		"sampling.draw:err@1",
		"engine.scatter[1]:err@1+",
		"compress.encode:panic@3",
		"heap.scan:lat:5ms@every10",
		"sampling.draw:err%20",
		"a:err@1,2,9;b.c:panic@4",
		"a:lat:1h2m3s@2+",
		" a:err@1 ; b:panic@2 ",
		"p:err@18446744073709551615",
		"p[4294967295]:err@1",
		"p:err@every4294967295",
		"",
		";;;",
		"p:lat:@1",
		"p:err%",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := Parse(s)
		if err != nil {
			return
		}
		canon := sched.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", s, canon, got)
		}
	})
}
