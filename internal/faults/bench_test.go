package faults

import "testing"

// BenchmarkFaultPointDisarmed measures the permanent cost an injection
// point adds to a production path when no schedule is armed: one atomic
// pointer load, zero allocations. This is the number that justifies
// leaving the checks compiled into the hot path.
func BenchmarkFaultPointDisarmed(b *testing.B) {
	p := Register("bench.disarmed")
	b.Run("check", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.Check(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("check1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := p.Check1(uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFaultPointArmedMiss measures an armed point whose clauses do
// not fire on this call — the cost paid by non-target calls while a chaos
// schedule targets another arg.
func BenchmarkFaultPointArmedMiss(b *testing.B) {
	p := Register("bench.armedmiss")
	if err := Arm("bench.armedmiss[7]:err@1+", 1); err != nil {
		b.Fatal(err)
	}
	defer Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Check1(3); err != nil {
			b.Fatal(err)
		}
	}
}
