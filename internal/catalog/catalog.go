// Package catalog defines the versioned data plane every estimation
// consumer speaks to. A catalog.Table is the single table abstraction
// shared by the storage engine (internal/db), the synthetic workload
// generators (internal/workload), the sampling schemes, the what-if
// engine, and cfserve: identity (name + process-unique instance id),
// schema, uniform random row access, and a monotonically increasing
// **version epoch** that mutation paths bump.
//
// The epoch is the invalidation contract of the whole stack:
//
//   - a table's epoch never decreases, and strictly increases on any
//     mutation that can change an estimate (insert, delete, reorder);
//   - anything derived from a table (an engine cache entry, a maintained
//     sample snapshot) records the epoch it was computed at;
//   - a derived value is valid iff its recorded (instance id, epoch) pair
//     still matches the table's — an O(1) comparison, with no row access.
//
// Cache invalidation therefore never scans data: a mutation bumps one
// atomic counter, and every stale derived value misses naturally because
// its key no longer matches. This replaces the engine's previous
// content-fingerprint keying, which probed table rows on every request.
package catalog

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"samplecf/internal/sampling"
	"samplecf/internal/value"
)

// Table is the versioned estimation source: what every consumer in the
// data plane (sampling, engine, advisor, cfserve) programs against.
type Table interface {
	// Name returns the table name.
	Name() string
	// Schema returns the row schema.
	Schema() *value.Schema
	// NumRows returns the live row count.
	NumRows() int64
	// Row materializes row i (0 ≤ i < NumRows); sampling.RowSource.
	Row(i int64) (value.Row, error)
	// Epoch returns the current version epoch. It strictly increases on
	// every mutation that can change an estimate and never decreases.
	Epoch() uint64
	// InstanceID returns a process-unique id for this table instance, so
	// two tables that share a name (for example, a dropped and re-created
	// table) never collide in epoch-keyed caches.
	InstanceID() uint64
}

// Sharded is the optional partitioning capability: tables whose rows are
// split across range/hash shards, each shard a full Table with its own
// instance id and epoch. The table-level Epoch() of a sharded table is an
// aggregate (the sum of shard epochs — monotone because each addend is),
// but epoch-keyed consumers should prefer EpochVector: keying derived
// state per shard means a mutation on one shard invalidates only that
// shard's entries, while everything derived from the untouched shards
// keeps serving. The engine's scatter-gather estimation path and the
// parallel TrueCF scan both discover shard structure through this
// interface.
type Sharded interface {
	Table
	// NumShards returns the number of shards (≥ 1, fixed at creation).
	NumShards() int
	// Shard returns shard i (0 ≤ i < NumShards) as a full Table: its
	// NumRows/Row/Epoch/InstanceID describe that shard alone.
	Shard(i int) Table
	// EpochVector snapshots every shard's epoch in shard order. The
	// vector is the cache contract: derived state recorded at
	// (InstanceID, shard i, EpochVector[i]) stays valid until shard i
	// itself mutates.
	EpochVector() []uint64
}

// PageProvider is the optional block-sampling capability: tables whose
// rows live on physical pages expose them for page-level draws.
type PageProvider interface {
	// PageSource returns a snapshot view of the table's pages. The view
	// reflects the epoch at call time; callers re-fetch after mutations.
	PageSource() (sampling.PageSource, error)
}

// Sample is a maintained-sample snapshot: rows that were a uniform random
// sample of the table as of Epoch, arena-encoded so estimation consumers
// gather from it by byte range — no per-row decoding between the
// maintained reservoir and the estimator.
type Sample struct {
	// Arena holds the sampled rows (records + memcomparable keys) under
	// the table's schema. It is a snapshot: later table mutations never
	// change it, and callers must not mutate it either.
	Arena *value.RecordArena
	// Epoch is the table epoch the snapshot was taken at.
	Epoch uint64
}

// SampleProvider is the optional maintained-sample capability: tables
// that keep an incrementally maintained uniform sample (a backing sample
// updated on insert/delete) serve snapshots without an O(r) fresh draw.
type SampleProvider interface {
	// MaintainedSample returns a snapshot of at least min rows, or
	// ok=false when the maintained sample is missing, stale, or smaller
	// than min (callers then fall back to a fresh draw).
	MaintainedSample(min int64) (Sample, bool)
}

// SnapshotProvider is the optional lock-free-read capability: tables that
// publish copy-on-write row snapshots (an immutable arena view swapped in
// atomically on every mutation) hand readers a pinned, scan-stable view of
// their rows for the cost of one atomic pointer load. The returned source
// satisfies sampling.StableRowSource — its row set is frozen no matter
// what writers commit afterwards — so consumers that need whole-scan
// consistency (sample draws, TrueCF's parallel arena fill) can run against
// a live mutating table without holding its lock.
//
// Epoch-keyed caching is what makes the pinned view composable: the
// returned epoch is the table epoch the snapshot was published at, and a
// consumer that keys its derived state at that epoch gets exactly the
// invalidation contract documented above — if the table moved on, the
// epochs differ and the derived state misses naturally.
type SnapshotProvider interface {
	// SnapshotRows returns the current pinned row view and the epoch it
	// was published at. Implementations may rebuild lazily (after a
	// delete, say), so an error is possible; callers fall back to the
	// table's locked access paths.
	SnapshotRows() (sampling.StableRowSource, uint64, error)
}

// IndexBoundaryProvider is the optional index-assisted stratification
// capability: tables that maintain an ordered index over some key columns
// can cut the key domain into near-equal-count ranges from a walk of the
// index's separator keys — no table scan. Stratified estimation prefers
// these boundaries over a pilot sample when an index matches the request's
// key columns.
type IndexBoundaryProvider interface {
	// IndexKeyBoundaries returns up to strata-1 strictly ascending
	// memcomparable boundary keys from an index whose key columns equal
	// keyCols (nil/empty keyCols = all columns, matching core.Options), or
	// ok=false when no such index exists. Fewer boundaries than requested
	// (including zero, for a one-node index) is still ok=true: the index
	// simply supports fewer cut points.
	IndexKeyBoundaries(keyCols []string, strata int) (bounds [][]byte, ok bool)
}

// instanceIDs issues process-unique table instance ids. ID 0 is never
// issued, so the zero Version is detectably uninitialized.
var instanceIDs atomic.Uint64

// Version is the embeddable identity+epoch helper: a process-unique
// instance id plus an atomic epoch counter. Tables embed a Version
// (initialized with NewVersion) to satisfy the Epoch/InstanceID half of
// the Table interface.
type Version struct {
	id    uint64
	epoch atomic.Uint64
}

// NewVersion returns a Version with a fresh process-unique instance id
// and epoch 0.
func NewVersion() Version {
	return Version{id: instanceIDs.Add(1)}
}

// Epoch implements Table.
func (v *Version) Epoch() uint64 { return v.epoch.Load() }

// InstanceID implements Table.
func (v *Version) InstanceID() uint64 { return v.id }

// Bump advances the epoch by one and returns the new value. Mutation
// paths call it after the change is applied, so an estimate keyed at the
// new epoch never reflects pre-mutation data.
func (v *Version) Bump() uint64 { return v.epoch.Add(1) }

// Catalog is a named, concurrency-safe registry of live tables: the
// mount point cfserve and embedded consumers resolve names through.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]Table)}
}

// Register adds t under its name; duplicate names are rejected.
func (c *Catalog) Register(t Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name()]; dup {
		return fmt.Errorf("catalog: table %q already registered", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// Lookup resolves a table by name.
func (c *Catalog) Lookup(name string) (Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Drop removes a table from the catalog. The table object itself is not
// touched — storage-level teardown (marking it dropped) is the owner's
// job.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	return nil
}

// Names lists registered tables, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// Len returns the number of registered tables.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}
