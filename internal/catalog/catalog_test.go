package catalog

import (
	"fmt"
	"sync"
	"testing"

	"samplecf/internal/value"
)

// fakeTable is a minimal catalog.Table for registry tests.
type fakeTable struct {
	Version
	name   string
	schema *value.Schema
}

func newFake(t *testing.T, name string) *fakeTable {
	t.Helper()
	schema, err := value.NewSchema(value.Column{Name: "v", Type: value.Int32()})
	if err != nil {
		t.Fatal(err)
	}
	return &fakeTable{Version: NewVersion(), name: name, schema: schema}
}

func (f *fakeTable) Name() string          { return f.name }
func (f *fakeTable) Schema() *value.Schema { return f.schema }
func (f *fakeTable) NumRows() int64        { return 0 }
func (f *fakeTable) Row(i int64) (value.Row, error) {
	return nil, fmt.Errorf("fake: no rows")
}

var _ Table = (*fakeTable)(nil)

func TestVersionEpochMonotonic(t *testing.T) {
	v := NewVersion()
	if v.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d, want 0", v.Epoch())
	}
	for i := 1; i <= 5; i++ {
		if got := v.Bump(); got != uint64(i) {
			t.Fatalf("bump %d returned %d", i, got)
		}
	}
	if v.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", v.Epoch())
	}
}

func TestInstanceIDsUnique(t *testing.T) {
	const n = 200
	seen := make(map[uint64]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := NewVersion()
			mu.Lock()
			defer mu.Unlock()
			if v.InstanceID() == 0 {
				t.Error("instance id 0 issued")
			}
			if seen[v.InstanceID()] {
				t.Errorf("duplicate instance id %d", v.InstanceID())
			}
			seen[v.InstanceID()] = true
		}()
	}
	wg.Wait()
}

func TestCatalogRegistry(t *testing.T) {
	c := New()
	a, b := newFake(t, "a"), newFake(t, "b")
	if err := c.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(newFake(t, "a")); err == nil {
		t.Fatal("duplicate register succeeded")
	}
	if got, ok := c.Lookup("a"); !ok || got != Table(a) {
		t.Fatalf("lookup a = %v, %v", got, ok)
	}
	if names := c.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if err := c.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("dropped table still resolvable")
	}
	if err := c.Drop("a"); err == nil {
		t.Fatal("double drop succeeded")
	}
}
