package sampling

import (
	"fmt"
	"math"
	"testing"

	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// intRows builds n single-column rows holding int32 row numbers.
func intRows(n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.IntValue(int32(i))}
	}
	return rows
}

func rowID(r value.Row) int { return int(value.DecodeInt32(r[0])) }

func TestUniformWRSizeAndRange(t *testing.T) {
	src := SliceSource(intRows(100))
	g := rng.New(1)
	s, err := UniformWR(src, 500, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 500 {
		t.Fatalf("sample size %d", len(s))
	}
	for _, row := range s {
		if id := rowID(row); id < 0 || id >= 100 {
			t.Fatalf("sampled id %d out of range", id)
		}
	}
	// With replacement and r > n, duplicates are certain.
	seen := map[int]int{}
	for _, row := range s {
		seen[rowID(row)]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("WR sample of 500 from 100 has no duplicates")
	}
}

func TestUniformWRUniformity(t *testing.T) {
	const n = 20
	src := SliceSource(intRows(n))
	g := rng.New(2)
	counts := make([]int, n)
	const draws = 40000
	s, err := UniformWR(src, draws, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s {
		counts[rowID(row)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("row %d drawn %d times, want ≈%.0f", i, c, want)
		}
	}
}

func TestUniformWREmptySource(t *testing.T) {
	if _, err := UniformWR(SliceSource(nil), 5, rng.New(1)); err == nil {
		t.Fatal("empty source accepted")
	}
}

func TestUniformWORDistinct(t *testing.T) {
	const n = 200
	src := SliceSource(intRows(n))
	g := rng.New(3)
	s, err := UniformWOR(src, 50, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 50 {
		t.Fatalf("size %d", len(s))
	}
	seen := map[int]bool{}
	for _, row := range s {
		id := rowID(row)
		if seen[id] {
			t.Fatalf("duplicate id %d in WOR sample", id)
		}
		seen[id] = true
	}
	// Full sample = permutation of everything.
	full, err := UniformWOR(src, n, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != n {
		t.Fatalf("full WOR size %d", len(full))
	}
	seen = map[int]bool{}
	for _, row := range full {
		seen[rowID(row)] = true
	}
	if len(seen) != n {
		t.Fatalf("full WOR covered %d of %d", len(seen), n)
	}
	if _, err := UniformWOR(src, n+1, g); err == nil {
		t.Fatal("r > n accepted")
	}
}

func TestUniformWORInclusionProbability(t *testing.T) {
	// Each row must appear with probability r/n.
	const n = 30
	const r = 10
	const trials = 6000
	src := SliceSource(intRows(n))
	g := rng.New(4)
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		s, err := UniformWOR(src, r, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range s {
			counts[rowID(row)]++
		}
	}
	want := float64(trials) * r / n
	sd := math.Sqrt(want * (1 - float64(r)/n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*sd {
			t.Errorf("row %d included %d times, want ≈%.0f", i, c, want)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	const n = 50000
	g := rng.New(5)
	s, err := Bernoulli(NewSliceStream(intRows(n)), 0.1, g)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 * n
	if math.Abs(float64(len(s))-want) > 5*math.Sqrt(want) {
		t.Fatalf("bernoulli sample size %d, want ≈%.0f", len(s), want)
	}
	if _, err := Bernoulli(NewSliceStream(nil), 1.5, g); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestReservoirAlgorithms(t *testing.T) {
	const n = 5000
	const r = 100
	for name, fn := range map[string]func(Stream, int, *rng.RNG) ([]value.Row, error){
		"R": ReservoirR,
		"X": ReservoirX,
	} {
		t.Run(name, func(t *testing.T) {
			g := rng.New(6)
			s, err := fn(NewSliceStream(intRows(n)), r, g)
			if err != nil {
				t.Fatal(err)
			}
			if len(s) != r {
				t.Fatalf("reservoir size %d", len(s))
			}
			seen := map[int]bool{}
			for _, row := range s {
				id := rowID(row)
				if id < 0 || id >= n || seen[id] {
					t.Fatalf("bad or duplicate id %d", id)
				}
				seen[id] = true
			}
			// Short stream: reservoir returns everything.
			short, err := fn(NewSliceStream(intRows(10)), r, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			if len(short) != 10 {
				t.Fatalf("short stream reservoir %d", len(short))
			}
			if _, err := fn(NewSliceStream(nil), 0, rng.New(8)); err == nil {
				t.Fatal("r=0 accepted")
			}
		})
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Every row should land in the reservoir with probability r/n.
	const n = 40
	const r = 10
	const trials = 8000
	for name, fn := range map[string]func(Stream, int, *rng.RNG) ([]value.Row, error){
		"R": ReservoirR,
		"X": ReservoirX,
	} {
		t.Run(name, func(t *testing.T) {
			g := rng.New(9)
			counts := make([]int, n)
			for trial := 0; trial < trials; trial++ {
				s, err := fn(NewSliceStream(intRows(n)), r, g)
				if err != nil {
					t.Fatal(err)
				}
				for _, row := range s {
					counts[rowID(row)]++
				}
			}
			want := float64(trials) * r / n
			sd := math.Sqrt(want * (1 - float64(r)/n))
			for i, c := range counts {
				if math.Abs(float64(c)-want) > 5*sd {
					t.Errorf("row %d in reservoir %d times, want ≈%.0f", i, c, want)
				}
			}
		})
	}
}

// pageSliceSource groups rows into fixed-size pages.
type pageSliceSource struct {
	rows    []value.Row
	perPage int
}

func (p pageSliceSource) NumPages() int {
	return (len(p.rows) + p.perPage - 1) / p.perPage
}

func (p pageSliceSource) PageRows(i int) ([]value.Row, error) {
	start := i * p.perPage
	if start >= len(p.rows) {
		return nil, fmt.Errorf("page %d out of range", i)
	}
	end := start + p.perPage
	if end > len(p.rows) {
		end = len(p.rows)
	}
	return p.rows[start:end], nil
}

func TestBlockSample(t *testing.T) {
	ps := pageSliceSource{rows: intRows(1000), perPage: 50}
	g := rng.New(10)
	s, err := BlockSample(ps, 4, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 200 {
		t.Fatalf("block sample size %d, want 200", len(s))
	}
	// Rows arrive in whole-page groups: ids within a group are consecutive.
	pagesSeen := map[int]bool{}
	for i := 0; i < len(s); i += 50 {
		base := rowID(s[i])
		if base%50 != 0 {
			t.Fatalf("group at %d starts mid-page (id %d)", i, base)
		}
		for j := 0; j < 50; j++ {
			if rowID(s[i+j]) != base+j {
				t.Fatalf("group at %d not contiguous", i)
			}
		}
		if pagesSeen[base/50] {
			t.Fatalf("page %d sampled twice", base/50)
		}
		pagesSeen[base/50] = true
	}
	if _, err := BlockSample(ps, 21, g); err == nil {
		t.Fatal("too many pages accepted")
	}
}

func TestSampleSize(t *testing.T) {
	cases := []struct {
		n    int64
		f    float64
		want int64
	}{
		{100, 0.01, 1},
		{1000, 0.01, 10},
		{1000, 0.0001, 1}, // clamped to 1
		{0, 0.5, 0},
		{1000, 0, 0},
		{100_000_000, 0.01, 1_000_000}, // Example 1
	}
	for _, c := range cases {
		if got := SampleSize(c.n, c.f); got != c.want {
			t.Errorf("SampleSize(%d,%v) = %d, want %d", c.n, c.f, got, c.want)
		}
	}
}

func TestSliceSourceBounds(t *testing.T) {
	src := SliceSource(intRows(3))
	if _, err := src.Row(3); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := src.Row(-1); err == nil {
		t.Fatal("negative accepted")
	}
}

func BenchmarkUniformWR(b *testing.B) {
	src := SliceSource(intRows(1_000_000))
	g := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UniformWR(src, 1000, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReservoirX(b *testing.B) {
	rows := intRows(100_000)
	g := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReservoirX(NewSliceStream(rows), 1000, g); err != nil {
			b.Fatal(err)
		}
	}
}
