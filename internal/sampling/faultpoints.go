package sampling

import "samplecf/internal/faults"

// drawPoint is the sampling-draw injection point: consulted once per draw
// call (fresh uniform draws and resumable extension rounds alike), so a
// chaos schedule can fail or stall "the Nth draw the workload performs"
// deterministically. Disarmed cost: one atomic load per draw.
var drawPoint = faults.Register("sampling.draw")
