package sampling

import "samplecf/internal/obs"

// Process-wide sampling tallies on the default obs registry: one atomic
// add per draw call (not per row), so the sampling paths stay
// allocation-free.
var (
	metricRowsDrawn = obs.Default().Counter(
		"samplecf_sampling_rows_drawn_total",
		"Rows drawn by sampling routines: one-shot, resumable-round, reservoir-gather, and stratified draws alike.")
	metricReservoirRebuilds = obs.Default().Counter(
		"samplecf_reservoir_rebuilds_total",
		"Backing-sample reservoir resets ahead of a staleness rebuild scan.")
)
