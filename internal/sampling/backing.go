package sampling

import (
	"fmt"
	"sync"

	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// Backing is an incrementally maintained uniform sample — the "backing
// sample" of Gibbons, Matias & Poosala — for tables under insert/delete
// churn. It keeps hot tables from paying a fresh O(r) draw (plus, for
// heap-backed tables, an O(n) row-directory rebuild) on every estimation
// batch:
//
//   - inserts run Vitter's Algorithm R over the table's insert stream:
//     the first `target` rows all enter; afterwards row t enters with
//     probability target/t, evicting a uniformly chosen slot. Holes left
//     by deletes act as "ghost" eviction targets, so acceptance
//     probability stays target/t even while the reservoir is shrunken —
//     every live row remains equally likely to be sampled;
//   - deletes are exact, not approximate: every sampled row carries the
//     caller's storage key (a RID for heap tables), so deleting a row
//     removes precisely that row from the reservoir if present. The sample
//     stays uniform over the live rows; only its size shrinks;
//   - shrinkage is repaired by policy, not per-operation: when deletes
//     have eroded the reservoir below half its target (while the table
//     could still fill it), Stale reports true and the owner rebuilds
//     with a fresh scan (Reset + re-Insert).
//
// Storage is columnar: reservoir rows live in a value.RecordArena (one
// fixed-width slot per row, records and memcomparable keys pre-encoded),
// so serving an estimation sample is a byte-range gather with no per-row
// decoding or cloning — the arena IS the estimator's input format. Row
// payloads are copied into the arena at Insert, so callers keep ownership
// of what they pass in.
//
// All methods are safe for concurrent use.
type Backing struct {
	mu     sync.Mutex
	target int
	g      *rng.RNG

	ar   *value.RecordArena
	keys []uint64       // storage key per arena slot
	pos  map[uint64]int // storage key → arena slot
	// inserted counts rows offered since the last Reset: Algorithm R's
	// stream position t.
	inserted int64
	// deleted counts delete notifications since the last Reset; dropped
	// counts the subset that actually hit the reservoir.
	deleted, dropped int64
}

// NewBacking creates a maintained sample of rows under schema targeting
// `target` rows; draws derive from seed.
func NewBacking(schema *value.Schema, target int, seed uint64) (*Backing, error) {
	if schema == nil {
		return nil, fmt.Errorf("sampling: backing sample requires a schema")
	}
	if target <= 0 {
		return nil, fmt.Errorf("sampling: backing sample target %d must be positive", target)
	}
	return &Backing{
		target: target,
		g:      rng.New(seed),
		ar:     value.NewRecordArena(schema, target),
		keys:   make([]uint64, 0, target),
		pos:    make(map[uint64]int, target),
	}, nil
}

// Target returns the configured reservoir size.
func (b *Backing) Target() int { return b.target }

// Insert offers one newly inserted row (Algorithm R step). key is the
// row's storage identity (e.g. its RID) used for exact delete tolerance;
// offering a key that is already resident replaces that row in place.
// The row is copied into the reservoir's arena; the caller keeps ownership.
func (b *Backing) Insert(key uint64, row value.Row) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i, ok := b.pos[key]; ok {
		// Storage reused the key (e.g. a heap slot refilled after a
		// delete that was never reported); replace in place.
		return b.ar.SetRow(i, row)
	}
	b.inserted++
	if b.inserted <= int64(b.target) {
		return b.appendLocked(key, row)
	}
	// Algorithm R acceptance: j uniform over the stream so far; accept iff
	// j falls in the reservoir's index range. Conditioned on acceptance, j
	// is uniform over [0, target) and doubles as the eviction slot. Slots
	// beyond the current (possibly delete-shrunken) occupancy are ghosts:
	// accepting into one grows the reservoir back toward target without
	// evicting, keeping per-row membership probability at target/t.
	j := b.g.Int63n(b.inserted)
	if j >= int64(b.target) {
		return nil
	}
	if int(j) < b.ar.Len() {
		if err := b.ar.SetRow(int(j), row); err != nil {
			return err
		}
		delete(b.pos, b.keys[j])
		b.keys[j] = key
		b.pos[key] = int(j)
		return nil
	}
	return b.appendLocked(key, row)
}

// appendLocked grows the reservoir by one slot. Caller holds the mutex.
func (b *Backing) appendLocked(key uint64, row value.Row) error {
	if err := b.ar.Append(row); err != nil {
		return err
	}
	b.pos[key] = len(b.keys)
	b.keys = append(b.keys, key)
	return nil
}

// Delete notes the deletion of the row with the given storage key,
// removing it from the reservoir if it was sampled.
func (b *Backing) Delete(key uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deleted++
	i, ok := b.pos[key]
	if !ok {
		return
	}
	b.dropped++
	last := len(b.keys) - 1
	if i != last {
		b.ar.MoveRow(i, last)
		b.keys[i] = b.keys[last]
		b.pos[b.keys[i]] = i
	}
	b.ar.Truncate(last)
	b.keys = b.keys[:last]
	delete(b.pos, key)
}

// Size returns the current reservoir occupancy.
func (b *Backing) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ar.Len()
}

// SnapshotArena returns a point-in-time copy of the reservoir's arena.
// The copy is two contiguous buffer memcopies; subsequent reservoir churn
// never mutates a returned snapshot.
func (b *Backing) SnapshotArena() *value.RecordArena {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ar.Clone()
}

// Rows returns a snapshot of the reservoir decoded into per-column rows,
// for consumers outside the estimation hot path (the hot path gathers from
// SnapshotArena instead). The payloads alias the snapshot's own buffers.
func (b *Backing) Rows() []value.Row {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]value.Row, b.ar.Len())
	snap := b.ar.Clone()
	for i := range out {
		row, err := snap.Row(i)
		if err != nil {
			// Unreachable: every slot was encoded by Insert.
			panic(fmt.Sprintf("sampling: corrupt reservoir slot %d: %v", i, err))
		}
		out[i] = row
	}
	return out
}

// Stale reports whether the reservoir needs a rebuild, given the table's
// current live row count: deletes have eroded it below half target even
// though the table still has enough rows to fill that much. A fresh or
// insert-only reservoir is never stale.
func (b *Backing) Stale(liveRows int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	floor := int64(b.target / 2)
	if liveRows < floor {
		floor = liveRows
	}
	return int64(b.ar.Len()) < floor
}

// BackingStats reports the maintenance counters since the last Reset.
type BackingStats struct {
	// Size and Target describe reservoir occupancy.
	Size, Target int
	// Inserted counts rows offered; Deleted counts delete notifications;
	// Dropped counts deletes that removed a sampled row.
	Inserted, Deleted, Dropped int64
}

// Stats snapshots the counters.
func (b *Backing) Stats() BackingStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackingStats{
		Size:     b.ar.Len(),
		Target:   b.target,
		Inserted: b.inserted,
		Deleted:  b.deleted,
		Dropped:  b.dropped,
	}
}

// Reset empties the reservoir and counters ahead of a rebuild scan; seed
// re-derives the draw stream so rebuilds are reproducible.
func (b *Backing) Reset(seed uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	metricReservoirRebuilds.Inc()
	b.ar.Reset()
	b.keys = b.keys[:0]
	b.pos = make(map[uint64]int, b.target)
	b.inserted, b.deleted, b.dropped = 0, 0, 0
	b.g = rng.New(seed)
}
