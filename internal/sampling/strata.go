package sampling

import (
	"bytes"
	"fmt"
	"sort"

	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// Stratified draws: the sampling side of variance-directed estimation.
//
// A uniform sample of a skewed table spends most of its rows re-observing
// the hot part of the key domain; partitioning the domain into contiguous
// memcomparable-key ranges (strata) and drawing each range's sub-sample
// independently removes the between-strata component of the estimator's
// variance, and Neyman allocation (n_h ∝ N_h·σ_h) spends rows where the
// residual within-stratum variance is. The pieces here are deliberately
// mechanical — boundaries, a row directory, per-stratum resumable streams,
// an allocator — and composition (weights, variance, confidence intervals)
// stays in internal/stats and internal/core.

// StreamSeed derives sub-stream h's seed from a base seed by a Weyl step,
// the same discipline the engine's shard scatter uses: stream 0 keeps the
// base seed, so a degenerate single-stratum draw is byte-identical to the
// unstratified one keyed by the same seed.
func StreamSeed(seed uint64, stream int) uint64 {
	return seed ^ (uint64(stream) * 0x9e3779b97f4a7c15)
}

// KeyStrata partitions the memcomparable key domain into contiguous ranges
// by H-1 strictly ascending boundary keys: stratum 0 is keys < bounds[0],
// stratum h is [bounds[h-1], bounds[h]), and the last stratum is keys ≥
// bounds[H-2]. Zero boundaries is the degenerate single stratum.
type KeyStrata struct {
	bounds [][]byte
}

// NewKeyStrata validates that bounds ascend strictly and returns the
// partition they induce. The boundary slices are retained, not copied.
func NewKeyStrata(bounds [][]byte) (*KeyStrata, error) {
	for i := 1; i < len(bounds); i++ {
		if bytes.Compare(bounds[i-1], bounds[i]) >= 0 {
			return nil, fmt.Errorf("sampling: stratum boundaries %d and %d are not strictly ascending", i-1, i)
		}
	}
	return &KeyStrata{bounds: bounds}, nil
}

// NumStrata returns H.
func (s *KeyStrata) NumStrata() int { return len(s.bounds) + 1 }

// Boundaries returns the boundary keys (aliased, not copied).
func (s *KeyStrata) Boundaries() [][]byte { return s.bounds }

// StratumOf returns the stratum index of a key: the number of boundaries ≤
// key.
func (s *KeyStrata) StratumOf(key []byte) int {
	return sort.Search(len(s.bounds), func(i int) bool {
		return bytes.Compare(s.bounds[i], key) > 0
	})
}

// EquiDepthBoundaries derives up to h-1 ascending boundary keys splitting a
// sorted key sequence into near-equal-count ranges: key(i) must be
// non-decreasing in i. Boundary candidates that collide with the sequence
// minimum or with an earlier boundary are dropped — a duplicate-heavy
// domain supports fewer distinct cut points than requested, and an empty
// stratum would contribute nothing but allocation floor rows — so the
// result may induce fewer than h strata. Each boundary is a fresh copy.
func EquiDepthBoundaries(n, h int, key func(i int) []byte) [][]byte {
	if n <= 0 || h <= 1 {
		return nil
	}
	var bounds [][]byte
	prev := key(0)
	for j := 1; j < h; j++ {
		idx := j * n / h
		if idx <= 0 || idx >= n {
			continue
		}
		b := key(idx)
		if bytes.Compare(b, prev) <= 0 {
			continue
		}
		bounds = append(bounds, append([]byte(nil), b...))
		prev = bounds[len(bounds)-1]
	}
	return bounds
}

// StrataDirectory buckets every row index of a table by key-range stratum:
// the per-stratum random-access view stratified draws need. Building it
// costs one O(n) key-projection scan; the engine caches directories per
// (table version, key columns, strata count) so the scan amortizes across
// the what-if traffic that reuses them.
type StrataDirectory struct {
	strata *KeyStrata
	rows   [][]int64 // rows[h] = row indices of stratum h, ascending
	total  int64
}

// BuildStrataDirectory scans src's rows in order, encoding each row's index
// key with keyOf (append-style: keyOf(row, buf) returns the encoded key,
// reusing buf's storage) and bucketing the row index by key range. Within a
// stratum, row indices stay in table order — with a single stratum the
// directory is the identity over [0, n), which is what keeps degenerate
// stratified draws byte-identical to uniform ones.
func BuildStrataDirectory(src RowSource, ks *KeyStrata,
	keyOf func(row value.Row, buf []byte) ([]byte, error)) (*StrataDirectory, error) {
	n := src.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("sampling: source is empty")
	}
	h := ks.NumStrata()
	d := &StrataDirectory{strata: ks, rows: make([][]int64, h), total: n}
	if h == 1 {
		idx := make([]int64, n)
		for i := range idx {
			idx[i] = int64(i)
		}
		d.rows[0] = idx
		return d, nil
	}
	var buf []byte
	for i := int64(0); i < n; i++ {
		row, err := src.Row(i)
		if err != nil {
			return nil, fmt.Errorf("sampling: row fetch: %w", err)
		}
		buf, err = keyOf(row, buf[:0])
		if err != nil {
			return nil, fmt.Errorf("sampling: encode stratum key: %w", err)
		}
		s := ks.StratumOf(buf)
		d.rows[s] = append(d.rows[s], i)
	}
	return d, nil
}

// NumStrata returns H.
func (d *StrataDirectory) NumStrata() int { return len(d.rows) }

// Strata returns the key partition the directory was built over.
func (d *StrataDirectory) Strata() *KeyStrata { return d.strata }

// NumRows returns the total row count across strata.
func (d *StrataDirectory) NumRows() int64 { return d.total }

// Counts returns the per-stratum population sizes N_h (a fresh slice).
func (d *StrataDirectory) Counts() []int64 {
	out := make([]int64, len(d.rows))
	for h, r := range d.rows {
		out[h] = int64(len(r))
	}
	return out
}

// WRInto draws r rows uniformly with replacement from stratum h, encoding
// each straight into the arena — the fixed-size stratified draw. The g
// stream is caller-owned (one rng.New(StreamSeed(seed, h)) per stratum), so
// with a single identity stratum the draw sequence is exactly UniformWRInto's.
func (d *StrataDirectory) WRInto(src RowSource, h int, r int64, g *rng.RNG, ar *value.RecordArena) error {
	idx := d.rows[h]
	if len(idx) == 0 {
		return fmt.Errorf("sampling: stratum %d is empty", h)
	}
	if r < 0 {
		return fmt.Errorf("sampling: negative sample size %d", r)
	}
	nh := int64(len(idx))
	for i := int64(0); i < r; i++ {
		row, err := src.Row(idx[g.Int63n(nh)])
		if err != nil {
			return fmt.Errorf("sampling: row fetch: %w", err)
		}
		if err := ar.Append(row); err != nil {
			return fmt.Errorf("sampling: encode row: %w", err)
		}
	}
	metricRowsDrawn.Add(uint64(r))
	return nil
}

// ExtendWRInto appends `extra` rows drawn uniformly with replacement from
// stratum h — round `round` of the stratum's resumable draw keyed by seed,
// the per-stratum analogue of the package-level ExtendWRInto. Callers
// derive per-stratum seeds (StreamSeed) so the strata's streams are
// mutually independent, and rounds of one stream never redraw earlier
// rounds' rows.
func (d *StrataDirectory) ExtendWRInto(src RowSource, h int, ar *value.RecordArena,
	extra int64, seed uint64, round int) error {
	if round < 0 {
		return fmt.Errorf("sampling: negative round %d", round)
	}
	if extra < 0 {
		return fmt.Errorf("sampling: negative extension size %d", extra)
	}
	return d.WRInto(src, h, extra, rng.New(seed).Derive(uint64(round)), ar)
}

// WORExtend draws `extra` distinct rows of stratum h that no earlier round
// picked — round `round` of the stratum's resumable without-replacement
// stream keyed by seed — returning their table-global row indices and
// recording the stratum-local picks in chosen (one chosen set per stratum,
// caller-kept across rounds).
func (d *StrataDirectory) WORExtend(h int, extra int64, seed uint64, round int,
	chosen map[int64]struct{}) ([]int64, error) {
	idx := d.rows[h]
	local, err := WORExtendIndices(int64(len(idx)), extra, seed, round, chosen)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(local))
	for i, l := range local {
		out[i] = idx[l]
	}
	return out, nil
}

// Allocate splits a total sample size across strata in proportion to
// scores, rounding by largest remainder (stratum index breaks ties, so the
// split is deterministic) and flooring every stratum with a positive count
// at one row — the stratified estimate must cover every non-empty stratum
// to stay unbiased, and a one-row floor is the cheapest cover (when total
// is below the non-empty stratum count the allocation overshoots total).
// A nil or all-zero scores slice falls back to allocation proportional to
// counts.
func Allocate(total int64, counts []int64, scores []float64) []int64 {
	out := make([]int64, len(counts))
	var countTotal int64
	for _, c := range counts {
		countTotal += c
	}
	if countTotal == 0 {
		return out
	}
	var scoreTotal float64
	for _, s := range scores {
		scoreTotal += s
	}
	exactShare := func(h int) float64 {
		if scores == nil || scoreTotal == 0 {
			return float64(total) * float64(counts[h]) / float64(countTotal)
		}
		return float64(total) * scores[h] / scoreTotal
	}
	type rem struct {
		frac    float64
		stratum int
	}
	rems := make([]rem, 0, len(counts))
	var used int64
	for h, c := range counts {
		if c == 0 {
			continue
		}
		exact := exactShare(h)
		base := int64(exact)
		out[h] = base
		used += base
		rems = append(rems, rem{frac: exact - float64(base), stratum: h})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].stratum < rems[j].stratum
	})
	for left := total - used; left > 0 && len(rems) > 0; left-- {
		out[rems[0].stratum]++
		rems = rems[1:]
	}
	for h, c := range counts {
		if c > 0 && out[h] == 0 {
			out[h] = 1
		}
	}
	return out
}

// NeymanAllocate splits a total sample size across strata by Neyman
// allocation, n_h ∝ N_h·σ_h: rows go where population mass times
// within-stratum estimator spread is, which minimizes the composed
// stratified variance for a fixed total. Strata whose σ_h is zero (or
// unknown — all zeros) degrade gracefully to proportional allocation.
func NeymanAllocate(total int64, counts []int64, sigmas []float64) []int64 {
	scores := make([]float64, len(counts))
	any := false
	for h, c := range counts {
		if h < len(sigmas) && sigmas[h] > 0 {
			scores[h] = float64(c) * sigmas[h]
			any = true
		}
	}
	if !any {
		scores = nil
	}
	return Allocate(total, counts, scores)
}
