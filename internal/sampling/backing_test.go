package sampling

import (
	"testing"

	"samplecf/internal/stats"
	"samplecf/internal/value"
)

// rowOf builds a one-column row whose payload encodes id.
func rowOf(id uint64) value.Row {
	return value.Row{value.Int64Value(int64(id))}
}

// backingSchema is the one-column schema the backing tests reservoir rows
// under.
var backingSchema = value.MustSchema(value.Column{Name: "id", Type: value.Int64()})

func TestBackingFillThenReservoir(t *testing.T) {
	b, err := NewBacking(backingSchema, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		b.Insert(i, rowOf(i))
	}
	if b.Size() != 5 {
		t.Fatalf("size after underfill = %d, want 5", b.Size())
	}
	for i := uint64(5); i < 1000; i++ {
		b.Insert(i, rowOf(i))
	}
	if b.Size() != 8 {
		t.Fatalf("size after 1000 inserts = %d, want target 8", b.Size())
	}
	st := b.Stats()
	if st.Inserted != 1000 || st.Target != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBackingNewBackingRejectsBadTarget(t *testing.T) {
	if _, err := NewBacking(backingSchema, 0, 1); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := NewBacking(backingSchema, -3, 1); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestBackingDeleteIsExact(t *testing.T) {
	b, err := NewBacking(backingSchema, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		b.Insert(i, rowOf(i))
	}
	b.Delete(3)
	if b.Size() != 9 {
		t.Fatalf("size after sampled delete = %d, want 9", b.Size())
	}
	for _, row := range b.Rows() {
		if string(row[0]) == string(value.Int64Value(3)) {
			t.Fatal("deleted row still in reservoir")
		}
	}
	b.Delete(999) // never inserted: counted, no effect
	if b.Size() != 9 {
		t.Fatalf("size after unsampled delete = %d, want 9", b.Size())
	}
	st := b.Stats()
	if st.Deleted != 2 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBackingReusedKeyReplacesInPlace(t *testing.T) {
	b, err := NewBacking(backingSchema, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Insert(1, rowOf(10))
	b.Insert(1, rowOf(20))
	if b.Size() != 1 {
		t.Fatalf("size = %d, want 1", b.Size())
	}
	if got := b.Rows()[0]; string(got[0]) != string(value.Int64Value(20)) {
		t.Fatalf("row = %v, want replacement", got)
	}
}

func TestBackingStalenessPolicy(t *testing.T) {
	b, err := NewBacking(backingSchema, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		b.Insert(i, rowOf(i))
	}
	if b.Stale(100) {
		t.Fatal("full reservoir reported stale")
	}
	// Erode below target/2 by deleting sampled rows.
	deleted := 0
	for i := uint64(0); i < 100 && b.Size() > 3; i++ {
		before := b.Size()
		b.Delete(i)
		if b.Size() < before {
			deleted++
		}
	}
	if b.Size() >= 8 {
		t.Fatalf("erosion failed, size %d", b.Size())
	}
	if !b.Stale(100 - int64(deleted)) {
		t.Fatal("eroded reservoir not reported stale")
	}
	// A tiny table can never fill target/2; it is not stale.
	if b.Stale(int64(b.Size())) {
		t.Fatal("reservoir covering the whole tiny table reported stale")
	}
	// Rebuild: reset + rescan clears staleness.
	b.Reset(4)
	for i := uint64(200); i < 300; i++ {
		b.Insert(i, rowOf(i))
	}
	if b.Stale(100) {
		t.Fatal("rebuilt reservoir reported stale")
	}
	if st := b.Stats(); st.Deleted != 0 || st.Inserted != 100 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

// TestBackingUniformityChiSquared is the property test: across a mutation
// stream of interleaved inserts and deletes, every live row must be
// equally likely to appear in the maintained sample. Membership counts
// over many independent seeds are tested against the uniform expectation
// with Pearson's chi-squared (via internal/stats).
func TestBackingUniformityChiSquared(t *testing.T) {
	const (
		target = 16
		trials = 4000
	)
	// Mutation stream: insert 0..99, delete every third of them, then
	// insert 100..149. Live set: the 120 surviving ids.
	live := make(map[uint64]int) // id → chi-squared cell
	cell := 0
	for i := uint64(0); i < 100; i++ {
		if i%3 != 0 {
			live[i] = cell
			cell++
		}
	}
	for i := uint64(100); i < 150; i++ {
		live[i] = cell
		cell++
	}

	counts := make([]int64, cell)
	var totalSize int64
	for trial := 0; trial < trials; trial++ {
		b, err := NewBacking(backingSchema, target, uint64(trial)+1)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 100; i++ {
			b.Insert(i, rowOf(i))
		}
		for i := uint64(0); i < 100; i += 3 {
			b.Delete(i)
		}
		for i := uint64(100); i < 150; i++ {
			b.Insert(i, rowOf(i))
		}
		for _, row := range b.Rows() {
			id := uint64(value.DecodeInt64(row[0]))
			c, ok := live[id]
			if !ok {
				t.Fatalf("trial %d: deleted or unknown id %d in sample", trial, id)
			}
			counts[c]++
			totalSize++
		}
	}

	// Every live row should hold an equal share of the total inclusions.
	expected := make([]float64, len(counts))
	for i := range expected {
		expected[i] = float64(totalSize) / float64(len(counts))
	}
	x2 := stats.ChiSquared(counts, expected)
	df := len(counts) - 1
	p := stats.ChiSquaredPValue(x2, df)
	if p < 1e-3 {
		t.Fatalf("maintained sample not uniform: X² = %.1f (df %d), p = %g", x2, df, p)
	}
}
