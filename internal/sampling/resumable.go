package sampling

import (
	"fmt"

	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// Resumable draws: the sampling side of precision-targeted estimation.
//
// An adaptive estimation loop grows its sample in rounds — estimate, check
// the confidence interval, draw more rows, repeat — and must never redraw
// the rows of earlier rounds (that would waste the I/O the loop exists to
// save) while staying exactly reproducible. Both properties come from one
// rule: round k of a draw keyed by seed uses the derived stream
// rng.New(seed).Derive(k), independent of every other round. Replaying
// rounds 0..k with the same per-round sizes therefore reproduces the
// cumulative sample byte-for-byte, whether the rounds ran in one process
// or were resumed across calls.

// ExtendWRInto appends `extra` rows drawn uniformly with replacement —
// round `round` of the resumable draw keyed by seed — encoding each
// straight into the arena. Rounds are mutually independent WR draws, so
// the concatenation of rounds 0..k is itself a uniform WR sample of
// Σ sizes rows.
func ExtendWRInto(src RowSource, ar *value.RecordArena, extra int64, seed uint64, round int) error {
	if err := drawPoint.Check(); err != nil {
		return err
	}
	if round < 0 {
		return fmt.Errorf("sampling: negative round %d", round)
	}
	if extra < 0 {
		return fmt.Errorf("sampling: negative extension size %d", extra)
	}
	n := src.NumRows()
	if n == 0 {
		return fmt.Errorf("sampling: source is empty")
	}
	g := rng.New(seed).Derive(uint64(round))
	for i := int64(0); i < extra; i++ {
		row, err := src.Row(g.Int63n(n))
		if err != nil {
			return fmt.Errorf("sampling: row fetch: %w", err)
		}
		if err := ar.Append(row); err != nil {
			return fmt.Errorf("sampling: encode row: %w", err)
		}
	}
	metricRowsDrawn.Add(uint64(extra))
	return nil
}

// WORExtendIndices draws `extra` distinct indices from [0, n) that avoid
// every index in chosen — round `round` of a resumable without-replacement
// draw keyed by seed — and records the new picks in chosen. Earlier
// rounds' picks are the caller's chosen set, so the union over rounds is a
// uniform WOR sample of Σ sizes indices; given the same chosen set, the
// round's output depends only on (n, extra, seed, round).
//
// Rejection sampling keeps the already-chosen fraction's cost explicit:
// the expected number of draws is extra/(1-|chosen|/n), cheap while the
// cumulative sample is small relative to n (the adaptive regime) and an
// error once chosen ∪ extra would exceed the population.
func WORExtendIndices(n, extra int64, seed uint64, round int, chosen map[int64]struct{}) ([]int64, error) {
	if round < 0 {
		return nil, fmt.Errorf("sampling: negative round %d", round)
	}
	if extra < 0 {
		return nil, fmt.Errorf("sampling: negative extension size %d", extra)
	}
	if free := n - int64(len(chosen)); extra > free {
		return nil, fmt.Errorf("sampling: WOR extension of %d exceeds the %d unchosen rows", extra, free)
	}
	g := rng.New(seed).Derive(uint64(round))
	metricRowsDrawn.Add(uint64(extra))
	out := make([]int64, 0, extra)
	for int64(len(out)) < extra {
		idx := g.Int63n(n)
		if _, dup := chosen[idx]; dup {
			continue
		}
		chosen[idx] = struct{}{}
		out = append(out, idx)
	}
	return out, nil
}

// ExtendInto appends `extra` reservoir rows that no earlier round picked —
// round `round` of the resumable WOR draw keyed by seed over this backing
// sample — into ar, updating chosen (arena slot indices) in place. The
// gather happens under the reservoir lock, so each round is internally
// consistent; callers that need cross-round consistency against concurrent
// churn should extend a snapshot arena with WORExtendIndices instead (the
// engine's route).
func (b *Backing) ExtendInto(ar *value.RecordArena, extra int64, seed uint64, round int, chosen map[int64]struct{}) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx, err := WORExtendIndices(int64(b.ar.Len()), extra, seed, round, chosen)
	if err != nil {
		return err
	}
	return ar.AppendFrom(b.ar, idx)
}
