package sampling

import (
	"bytes"
	"fmt"
	"testing"

	"samplecf/internal/obs"
	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// strataKeyOf encodes a single-column row's index key for directory builds.
func strataKeyOf(t testing.TB, schema *value.Schema) func(value.Row, []byte) ([]byte, error) {
	t.Helper()
	return func(row value.Row, buf []byte) ([]byte, error) {
		return value.EncodeKey(schema, row, buf)
	}
}

func TestKeyStrataStratumOf(t *testing.T) {
	ks, err := NewKeyStrata([][]byte{{0x20}, {0x40}, {0x60}})
	if err != nil {
		t.Fatal(err)
	}
	if ks.NumStrata() != 4 {
		t.Fatalf("NumStrata = %d, want 4", ks.NumStrata())
	}
	cases := []struct {
		key  []byte
		want int
	}{
		{[]byte{0x00}, 0}, {[]byte{0x1f}, 0},
		{[]byte{0x20}, 1}, {[]byte{0x3f, 0xff}, 1},
		{[]byte{0x40}, 2}, {[]byte{0x60}, 3}, {[]byte{0xff}, 3},
	}
	for _, c := range cases {
		if got := ks.StratumOf(c.key); got != c.want {
			t.Errorf("StratumOf(% x) = %d, want %d", c.key, got, c.want)
		}
	}
	if _, err := NewKeyStrata([][]byte{{0x40}, {0x40}}); err == nil {
		t.Error("duplicate boundaries accepted")
	}
	if _, err := NewKeyStrata([][]byte{{0x40}, {0x20}}); err == nil {
		t.Error("descending boundaries accepted")
	}
}

func TestEquiDepthBoundaries(t *testing.T) {
	// 100 sorted distinct keys: boundaries at ranks 25/50/75.
	keys := make([][]byte, 100)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%03d", i))
	}
	bounds := EquiDepthBoundaries(len(keys), 4, func(i int) []byte { return keys[i] })
	if len(bounds) != 3 {
		t.Fatalf("got %d boundaries, want 3", len(bounds))
	}
	for i, want := range []string{"k025", "k050", "k075"} {
		if string(bounds[i]) != want {
			t.Errorf("boundary %d = %q, want %q", i, bounds[i], want)
		}
	}
	// All-equal keys support no cut points at all.
	if b := EquiDepthBoundaries(100, 8, func(int) []byte { return []byte("same") }); len(b) != 0 {
		t.Errorf("constant domain produced %d boundaries, want 0", len(b))
	}
	// A dominant head value swallows candidate cuts without breaking ascent.
	skew := func(i int) []byte {
		if i < 90 {
			return []byte("aaa")
		}
		return []byte(fmt.Sprintf("z%02d", i-90))
	}
	b := EquiDepthBoundaries(100, 4, skew)
	if ks, err := NewKeyStrata(b); err != nil {
		t.Fatalf("skewed boundaries not strictly ascending: %v", err)
	} else if ks.NumStrata() > 4 {
		t.Fatalf("skewed domain yielded %d strata, want ≤ 4", ks.NumStrata())
	}
}

// TestStrataDirectorySingleStratumIdentity pins the degenerate contract:
// one stratum's directory is the identity over [0,n) and its WR draw with
// the base seed is byte-identical to UniformWRInto.
func TestStrataDirectorySingleStratumIdentity(t *testing.T) {
	src, schema := resumableRows(t, 3000)
	ks, err := NewKeyStrata(nil)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := BuildStrataDirectory(src, ks, strataKeyOf(t, schema))
	if err != nil {
		t.Fatal(err)
	}
	if got := dir.Counts(); len(got) != 1 || got[0] != 3000 {
		t.Fatalf("Counts = %v, want [3000]", got)
	}
	const seed, r = 7, 500
	plain := value.NewRecordArena(schema, r)
	if err := UniformWRInto(src, r, rng.New(seed), plain); err != nil {
		t.Fatal(err)
	}
	strat := value.NewRecordArena(schema, r)
	if err := dir.WRInto(src, 0, r, rng.New(StreamSeed(seed, 0)), strat); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Recs(), strat.Recs()) || !bytes.Equal(plain.Keys(), strat.Keys()) {
		t.Error("single-stratum WR draw differs from UniformWRInto")
	}
	// Resumable rounds too: stratum stream round k == package-level round k.
	plainExt := value.NewRecordArena(schema, r)
	stratExt := value.NewRecordArena(schema, r)
	for round, sz := range []int64{100, 200} {
		if err := ExtendWRInto(src, plainExt, sz, seed, round); err != nil {
			t.Fatal(err)
		}
		if err := dir.ExtendWRInto(src, 0, stratExt, sz, StreamSeed(seed, 0), round); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(plainExt.Recs(), stratExt.Recs()) {
		t.Error("single-stratum resumable rounds differ from ExtendWRInto")
	}
}

// TestStrataDirectoryPartition checks every row lands in exactly the
// stratum its key selects and per-stratum draws stay in-stratum.
func TestStrataDirectoryPartition(t *testing.T) {
	src, schema := resumableRows(t, 2000)
	keyOf := strataKeyOf(t, schema)
	// Boundaries on the encoded keys at rows 500/1000/1500 (row-%06d keys
	// sort in row order).
	var bounds [][]byte
	for _, i := range []int64{500, 1000, 1500} {
		row, err := src.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		k, err := keyOf(row, nil)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, k)
	}
	ks, err := NewKeyStrata(bounds)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := BuildStrataDirectory(src, ks, keyOf)
	if err != nil {
		t.Fatal(err)
	}
	counts := dir.Counts()
	want := []int64{500, 500, 500, 500}
	for h := range want {
		if counts[h] != want[h] {
			t.Errorf("stratum %d count = %d, want %d", h, counts[h], want[h])
		}
	}
	if dir.NumRows() != 2000 {
		t.Errorf("NumRows = %d, want 2000", dir.NumRows())
	}
	// Drawn rows of stratum h must all carry keys in stratum h's range.
	for h := 0; h < dir.NumStrata(); h++ {
		ar := value.NewRecordArena(schema, 64)
		if err := dir.ExtendWRInto(src, h, ar, 64, StreamSeed(9, h), 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ar.Len(); i++ {
			if got := ks.StratumOf(ar.Key(i)); got != h {
				t.Fatalf("stratum %d draw produced a key of stratum %d", h, got)
			}
		}
	}
}

// TestStrataDirectoryWORExtend checks per-stratum WOR rounds stay distinct,
// in-stratum, and resumable across rounds.
func TestStrataDirectoryWORExtend(t *testing.T) {
	src, schema := resumableRows(t, 1000)
	keyOf := strataKeyOf(t, schema)
	mid, err := src.Row(500)
	if err != nil {
		t.Fatal(err)
	}
	midKey, err := keyOf(mid, nil)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := NewKeyStrata([][]byte{midKey})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := BuildStrataDirectory(src, ks, keyOf)
	if err != nil {
		t.Fatal(err)
	}
	chosen := make(map[int64]struct{})
	seen := make(map[int64]struct{})
	for round := 0; round < 3; round++ {
		idx, err := dir.WORExtend(1, 50, StreamSeed(3, 1), round, chosen)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range idx {
			if g < 500 || g >= 1000 {
				t.Fatalf("round %d drew global row %d outside stratum 1", round, g)
			}
			if _, dup := seen[g]; dup {
				t.Fatalf("round %d redrew row %d", round, g)
			}
			seen[g] = struct{}{}
		}
	}
	if len(seen) != 150 {
		t.Fatalf("drew %d distinct rows, want 150", len(seen))
	}
}

func TestAllocate(t *testing.T) {
	// Proportional: matches exact shares with largest-remainder rounding.
	got := Allocate(100, []int64{600, 300, 100}, nil)
	if got[0] != 60 || got[1] != 30 || got[2] != 10 {
		t.Errorf("proportional allocation = %v, want [60 30 10]", got)
	}
	// Min-1 floor: tiny totals still cover every non-empty stratum.
	got = Allocate(2, []int64{10, 10, 10, 0}, nil)
	for h, c := range []int64{10, 10, 10, 0} {
		if c > 0 && got[h] == 0 {
			t.Errorf("stratum %d allocated 0 rows", h)
		}
		if c == 0 && got[h] != 0 {
			t.Errorf("empty stratum %d allocated %d rows", h, got[h])
		}
	}
	// Neyman: rows follow N_h·σ_h, not N_h.
	got = NeymanAllocate(100, []int64{500, 500}, []float64{0.01, 0.03})
	if got[0] != 25 || got[1] != 75 {
		t.Errorf("Neyman allocation = %v, want [25 75]", got)
	}
	// All-zero sigmas fall back to proportional.
	got = NeymanAllocate(100, []int64{750, 250}, []float64{0, 0})
	if got[0] != 75 || got[1] != 25 {
		t.Errorf("zero-sigma Neyman allocation = %v, want [75 25]", got)
	}
	var total int64
	for _, c := range NeymanAllocate(97, []int64{11, 700, 289}, []float64{0.4, 0.001, 0.2}) {
		total += c
	}
	if total != 97 {
		t.Errorf("Neyman allocation totals %d, want 97", total)
	}
}

// TestRowsDrawnMetricUnified is the regression for the metric-site fix: the
// resumable extension paths (ExtendWRInto, WORExtendIndices, and
// Backing.ExtendInto through it) must observe the rows-drawn counter on the
// obs.Default() registry exactly like the one-shot draws always have.
func TestRowsDrawnMetricUnified(t *testing.T) {
	src, schema := resumableRows(t, 400)
	read := func() float64 {
		v, ok := obs.Default().Value("samplecf_sampling_rows_drawn_total")
		if !ok {
			t.Fatal("rows-drawn counter not registered on obs.Default()")
		}
		return v
	}

	before := read()
	ar := value.NewRecordArena(schema, 32)
	if err := ExtendWRInto(src, ar, 32, 5, 1); err != nil {
		t.Fatal(err)
	}
	if got := read() - before; got < 32 {
		t.Errorf("ExtendWRInto advanced rows-drawn by %v, want ≥ 32", got)
	}

	before = read()
	if _, err := WORExtendIndices(400, 16, 5, 0, make(map[int64]struct{})); err != nil {
		t.Fatal(err)
	}
	if got := read() - before; got < 16 {
		t.Errorf("WORExtendIndices advanced rows-drawn by %v, want ≥ 16", got)
	}

	b, err := NewBacking(schema, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		row, err := src.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(uint64(i), row); err != nil {
			t.Fatal(err)
		}
	}
	before = read()
	out := value.NewRecordArena(schema, 8)
	if err := b.ExtendInto(out, 8, 5, 0, make(map[int64]struct{})); err != nil {
		t.Fatal(err)
	}
	if got := read() - before; got < 8 {
		t.Errorf("Backing.ExtendInto advanced rows-drawn by %v, want ≥ 8", got)
	}

	// The rebuild counter's single site: Backing.Reset, regardless of what
	// triggered the rebuild.
	rb := func() float64 {
		v, _ := obs.Default().Value("samplecf_reservoir_rebuilds_total")
		return v
	}
	before = rb()
	b.Reset(99)
	if got := rb() - before; got != 1 {
		t.Errorf("Reset advanced rebuild counter by %v, want 1", got)
	}
}
