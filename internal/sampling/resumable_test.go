package sampling

import (
	"bytes"
	"fmt"
	"testing"

	"samplecf/internal/value"
)

// resumableRows builds an in-memory source of n distinct single-column rows.
func resumableRows(t testing.TB, n int) (SliceSource, *value.Schema) {
	t.Helper()
	schema, err := value.NewSchema(value.Column{Name: "v", Type: value.Char(12)})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.StringValue(fmt.Sprintf("row-%06d", i))}
	}
	return SliceSource(rows), schema
}

// TestExtendWRIntoRoundReplay is the determinism contract of resumable WR
// draws: drawing rounds [r0, r1, r2] incrementally into one arena equals
// drawing each round independently and concatenating — and replaying the
// whole schedule reproduces the bytes exactly.
func TestExtendWRIntoRoundReplay(t *testing.T) {
	src, schema := resumableRows(t, 5000)
	sizes := []int64{100, 100, 200, 400}
	const seed = 99

	incremental := value.NewRecordArena(schema, 800)
	for round, sz := range sizes {
		if err := ExtendWRInto(src, incremental, sz, seed, round); err != nil {
			t.Fatal(err)
		}
	}

	concatenated := value.NewRecordArena(schema, 800)
	for round, sz := range sizes {
		part := value.NewRecordArena(schema, int(sz))
		if err := ExtendWRInto(src, part, sz, seed, round); err != nil {
			t.Fatal(err)
		}
		if err := concatenated.AppendAll(part); err != nil {
			t.Fatal(err)
		}
	}

	if incremental.Len() != 800 || concatenated.Len() != 800 {
		t.Fatalf("lengths %d/%d, want 800", incremental.Len(), concatenated.Len())
	}
	if !bytes.Equal(incremental.Recs(), concatenated.Recs()) {
		t.Error("incremental and per-round record bytes differ")
	}
	if !bytes.Equal(incremental.Keys(), concatenated.Keys()) {
		t.Error("incremental and per-round key bytes differ")
	}

	// Full replay: same schedule, same bytes.
	replay := value.NewRecordArena(schema, 800)
	for round, sz := range sizes {
		if err := ExtendWRInto(src, replay, sz, seed, round); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(replay.Recs(), incremental.Recs()) {
		t.Error("replay produced different bytes")
	}

	// A different seed produces a different draw (sanity that the seed is
	// actually keyed in).
	other := value.NewRecordArena(schema, 800)
	for round, sz := range sizes {
		if err := ExtendWRInto(src, other, sz, seed+1, round); err != nil {
			t.Fatal(err)
		}
	}
	if bytes.Equal(other.Recs(), incremental.Recs()) {
		t.Error("different seeds drew identical samples")
	}
}

// TestExtendWRIntoRoundsIndependent checks round k's draw does not depend
// on whether rounds before it ran in this process — the resume property.
func TestExtendWRIntoRoundsIndependent(t *testing.T) {
	src, schema := resumableRows(t, 3000)
	const seed = 7

	// Round 2 drawn after rounds 0 and 1.
	after := value.NewRecordArena(schema, 0)
	for round, sz := range []int64{50, 50, 100} {
		if round == 2 {
			after = value.NewRecordArena(schema, 100)
		}
		if err := ExtendWRInto(src, after, sz, seed, round); err != nil {
			t.Fatal(err)
		}
	}
	// Round 2 drawn cold, as a resumed process would.
	cold := value.NewRecordArena(schema, 100)
	if err := ExtendWRInto(src, cold, 100, seed, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after.Recs(), cold.Recs()) {
		t.Error("round 2 depends on earlier rounds having run")
	}
}

// TestWORExtendIndices checks distinctness across rounds, exclusion-set
// updates, determinism, and the exhaustion error.
func TestWORExtendIndices(t *testing.T) {
	const n = 64
	chosen := make(map[int64]struct{})
	var all []int64
	for round, sz := range []int64{16, 16, 16} {
		idx, err := WORExtendIndices(n, sz, 5, round, chosen)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(idx)) != sz {
			t.Fatalf("round %d returned %d indices, want %d", round, len(idx), sz)
		}
		all = append(all, idx...)
	}
	seen := make(map[int64]struct{})
	for _, i := range all {
		if i < 0 || i >= n {
			t.Fatalf("index %d out of range", i)
		}
		if _, dup := seen[i]; dup {
			t.Fatalf("index %d drawn twice across rounds", i)
		}
		seen[i] = struct{}{}
	}
	if len(chosen) != 48 {
		t.Fatalf("chosen has %d entries, want 48", len(chosen))
	}

	// Replay with a fresh exclusion set: identical draws.
	chosen2 := make(map[int64]struct{})
	var all2 []int64
	for round, sz := range []int64{16, 16, 16} {
		idx, err := WORExtendIndices(n, sz, 5, round, chosen2)
		if err != nil {
			t.Fatal(err)
		}
		all2 = append(all2, idx...)
	}
	for i := range all {
		if all[i] != all2[i] {
			t.Fatalf("replay diverged at position %d: %d vs %d", i, all[i], all2[i])
		}
	}

	// Asking for more than remains must error, not spin.
	if _, err := WORExtendIndices(n, 17, 5, 3, chosen); err == nil {
		t.Error("WOR extension past the population was accepted")
	}
}

// TestBackingExtendInto checks the reservoir-side extension: rounds gather
// distinct slots, the arena grows accordingly, and draws replay.
func TestBackingExtendInto(t *testing.T) {
	src, schema := resumableRows(t, 500)
	b, err := NewBacking(schema, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < src.NumRows(); i++ {
		row, err := src.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(uint64(i), row); err != nil {
			t.Fatal(err)
		}
	}

	ar := value.NewRecordArena(schema, 150)
	chosen := make(map[int64]struct{})
	for round, sz := range []int64{50, 50, 50} {
		if err := b.ExtendInto(ar, sz, 11, round, chosen); err != nil {
			t.Fatal(err)
		}
	}
	if ar.Len() != 150 {
		t.Fatalf("arena has %d rows, want 150", ar.Len())
	}
	if len(chosen) != 150 {
		t.Fatalf("chosen has %d entries, want 150", len(chosen))
	}
	// Replay into a fresh arena: identical gather.
	ar2 := value.NewRecordArena(schema, 150)
	chosen2 := make(map[int64]struct{})
	for round, sz := range []int64{50, 50, 50} {
		if err := b.ExtendInto(ar2, sz, 11, round, chosen2); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(ar.Recs(), ar2.Recs()) {
		t.Error("reservoir extension replay diverged")
	}
	// Exhausting the reservoir errors.
	if err := b.ExtendInto(ar, 100, 11, 3, chosen); err == nil {
		t.Error("extension past the reservoir size was accepted")
	}
}
