// Package sampling implements the row- and page-sampling schemes the paper
// discusses:
//
//   - uniform random sampling WITH replacement — the paper's analytical
//     model (§II-C) and the default for SampleCF;
//   - uniform sampling WITHOUT replacement (Floyd's algorithm) — the
//     ablation that quantifies how little the WR assumption matters at
//     small f;
//   - Bernoulli sampling — per-row coin flips at rate f;
//   - reservoir sampling (Vitter's Algorithm R and the skip-based
//     Algorithm X) — the one-pass scheme for streams of unknown size;
//   - block (page-level) sampling — what commercial systems actually do,
//     flagged by the paper as future work and measured here in E7.
package sampling

import (
	"fmt"
	"math"

	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// RowSource provides uniform random access to a table's rows, the access
// pattern with-replacement sampling needs. Implementations: materialized
// workload tables, virtual (generator-backed) tables, heap-file adapters.
type RowSource interface {
	// NumRows returns n.
	NumRows() int64
	// Row materializes row i (0 ≤ i < n). The result must be safe to retain.
	Row(i int64) (value.Row, error)
}

// StableRowSource marks a RowSource whose row set is frozen while readers
// hold it: Row is safe to call from many goroutines AND the rows cannot
// change between two calls, so a multi-goroutine sweep over [0, NumRows())
// observes one consistent table state. Materialized workload tables (rows
// mutate only through explicit re-layout calls the owner serializes around
// readers) and virtual tables (pure functions of the row index) qualify
// directly. Live db tables qualify indirectly: the table handle itself is
// mutable, but its published copy-on-write snapshot
// (catalog.SnapshotProvider) is an immutable view that satisfies this
// interface — readers pin the snapshot and writers commit past it. Sharded
// full-table reads (core.TrueCF) parallelize only over sources that opt in
// via this marker.
type StableRowSource interface {
	RowSource
	// StableRows is a marker; it performs no work.
	StableRows()
}

// Stream is a one-pass row iterator, the input shape for reservoir and
// Bernoulli sampling.
type Stream interface {
	// Next returns the next row, or ok=false at end of stream.
	Next() (row value.Row, ok bool, err error)
}

// PageSource exposes a table's rows grouped by physical page, the unit
// block sampling draws.
type PageSource interface {
	// NumPages returns the number of pages.
	NumPages() int
	// PageRows materializes all rows on page p.
	PageRows(p int) ([]value.Row, error)
}

// UniformWR draws r rows uniformly with replacement — the paper's sampling
// model. The result length is exactly r.
func UniformWR(src RowSource, r int64, g *rng.RNG) ([]value.Row, error) {
	n := src.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("sampling: source is empty")
	}
	if r < 0 {
		return nil, fmt.Errorf("sampling: negative sample size %d", r)
	}
	out := make([]value.Row, 0, r)
	for i := int64(0); i < r; i++ {
		row, err := src.Row(g.Int63n(n))
		if err != nil {
			return nil, fmt.Errorf("sampling: row fetch: %w", err)
		}
		out = append(out, row)
	}
	metricRowsDrawn.Add(uint64(r))
	return out, nil
}

// UniformWOR draws r distinct rows uniformly without replacement using
// Floyd's algorithm (O(r) draws, O(r) memory). It errors if r > n.
func UniformWOR(src RowSource, r int64, g *rng.RNG) ([]value.Row, error) {
	order, err := WORIndices(src.NumRows(), r, g)
	if err != nil {
		return nil, err
	}
	out := make([]value.Row, 0, r)
	for _, idx := range order {
		row, err := src.Row(idx)
		if err != nil {
			return nil, fmt.Errorf("sampling: row fetch: %w", err)
		}
		out = append(out, row)
	}
	return out, nil
}

// WORIndices draws r distinct indices uniformly from [0, n) via Floyd's
// algorithm, in the same draw order UniformWOR visits rows — callers that
// gather rows from an arena by index get byte-identical samples to the
// row-at-a-time path. The rows-drawn metric is observed here, at the index
// draw, so the row-at-a-time route and the arena-gather route count alike.
func WORIndices(n, r int64, g *rng.RNG) ([]int64, error) {
	if r < 0 || r > n {
		return nil, fmt.Errorf("sampling: WOR size %d outside [0,%d]", r, n)
	}
	metricRowsDrawn.Add(uint64(r))
	chosen := make(map[int64]struct{}, r)
	order := make([]int64, 0, r)
	for j := n - r; j < n; j++ {
		t := g.Int63n(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		order = append(order, t)
	}
	return order, nil
}

// UniformWRInto draws r rows uniformly with replacement and encodes each
// straight into the arena — the engine's fresh-sample route, with no
// intermediate []value.Row. The draw sequence is identical to UniformWR's,
// so a given (source, r, seed) yields the same sample either way.
func UniformWRInto(src RowSource, r int64, g *rng.RNG, ar *value.RecordArena) error {
	if err := drawPoint.Check(); err != nil {
		return err
	}
	n := src.NumRows()
	if n == 0 {
		return fmt.Errorf("sampling: source is empty")
	}
	if r < 0 {
		return fmt.Errorf("sampling: negative sample size %d", r)
	}
	for i := int64(0); i < r; i++ {
		row, err := src.Row(g.Int63n(n))
		if err != nil {
			return fmt.Errorf("sampling: row fetch: %w", err)
		}
		if err := ar.Append(row); err != nil {
			return fmt.Errorf("sampling: encode row: %w", err)
		}
	}
	metricRowsDrawn.Add(uint64(r))
	return nil
}

// Bernoulli includes each stream row independently with probability f.
// The expected sample size is f·n; the actual size is binomial.
func Bernoulli(s Stream, f float64, g *rng.RNG) ([]value.Row, error) {
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("sampling: rate %v outside [0,1]", f)
	}
	var out []value.Row
	for {
		row, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if g.Float64() < f {
			out = append(out, row)
		}
	}
}

// ReservoirR fills a size-r reservoir from a stream using Vitter's
// Algorithm R: O(n) draws, uniform without replacement.
func ReservoirR(s Stream, r int, g *rng.RNG) ([]value.Row, error) {
	if r <= 0 {
		return nil, fmt.Errorf("sampling: reservoir size %d must be positive", r)
	}
	res := make([]value.Row, 0, r)
	var seen int64
	for {
		row, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return res, nil
		}
		seen++
		if len(res) < r {
			res = append(res, row)
			continue
		}
		if j := g.Int63n(seen); j < int64(r) {
			res[j] = row
		}
	}
}

// ReservoirX fills a size-r reservoir using Vitter's skip-based Algorithm X,
// which draws one random variate per REPLACEMENT rather than per row. It
// produces the same uniform guarantee as Algorithm R with far fewer RNG
// calls on large streams.
func ReservoirX(s Stream, r int, g *rng.RNG) ([]value.Row, error) {
	if r <= 0 {
		return nil, fmt.Errorf("sampling: reservoir size %d must be positive", r)
	}
	res := make([]value.Row, 0, r)
	for len(res) < r {
		row, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return res, nil
		}
		res = append(res, row)
	}
	t := float64(r) // rows seen so far
	for {
		// Draw the skip count: the number of rows to pass over before the
		// next replacement, via inversion of Algorithm X's skip CDF.
		u := g.Float64()
		skip := 0
		// P(skip >= s) = Π_{i=1..s} (t - r + i) / (t + i); walk until the
		// running product drops below u.
		prod := 1.0
		for {
			prod *= (t - float64(r) + float64(skip) + 1) / (t + float64(skip) + 1)
			if prod <= u || math.IsNaN(prod) {
				break
			}
			skip++
		}
		for i := 0; i < skip; i++ {
			if _, ok, err := s.Next(); err != nil {
				return nil, err
			} else if !ok {
				return res, nil
			}
			t++
		}
		row, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return res, nil
		}
		t++
		res[g.Intn(r)] = row
	}
}

// BlockSample draws `pages` pages uniformly without replacement and returns
// ALL rows on them — the commercial systems' shortcut the paper contrasts
// with uniform row sampling. The sample size is data-dependent: clustered
// layouts give correlated rows, which is exactly the effect experiment E7
// quantifies.
func BlockSample(ps PageSource, pages int, g *rng.RNG) ([]value.Row, error) {
	n := ps.NumPages()
	if pages < 0 || pages > n {
		return nil, fmt.Errorf("sampling: block count %d outside [0,%d]", pages, n)
	}
	// Floyd's algorithm over page numbers.
	chosen := make(map[int]struct{}, pages)
	var order []int
	for j := n - pages; j < n; j++ {
		t := g.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		order = append(order, t)
	}
	var out []value.Row
	for _, p := range order {
		rows, err := ps.PageRows(p)
		if err != nil {
			return nil, fmt.Errorf("sampling: page fetch: %w", err)
		}
		out = append(out, rows...)
	}
	metricRowsDrawn.Add(uint64(len(out)))
	return out, nil
}

// SampleSize converts a sampling fraction f into the paper's r = ⌈f·n⌉,
// clamped to at least 1 row for non-empty tables.
func SampleSize(n int64, f float64) int64 {
	if n <= 0 || f <= 0 {
		return 0
	}
	r := int64(math.Ceil(f * float64(n)))
	if r < 1 {
		r = 1
	}
	return r
}

// SliceSource adapts an in-memory row slice to RowSource.
type SliceSource []value.Row

// NumRows implements RowSource.
func (s SliceSource) NumRows() int64 { return int64(len(s)) }

// Row implements RowSource.
func (s SliceSource) Row(i int64) (value.Row, error) {
	if i < 0 || i >= int64(len(s)) {
		return nil, fmt.Errorf("sampling: row %d out of range", i)
	}
	return s[i], nil
}

// SliceStream adapts an in-memory row slice to Stream.
type SliceStream struct {
	rows []value.Row
	pos  int
}

// NewSliceStream wraps rows as a Stream.
func NewSliceStream(rows []value.Row) *SliceStream { return &SliceStream{rows: rows} }

// Next implements Stream.
func (s *SliceStream) Next() (value.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}
