package csvio

import (
	"bytes"
	"strings"
	"testing"

	"samplecf/internal/distrib"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

func TestParseSchemaSpec(t *testing.T) {
	s, err := ParseSchemaSpec("name:char:20, qty:int ,total:bigint,note:varchar:50")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 4 {
		t.Fatalf("columns = %d", s.NumColumns())
	}
	if s.Column(0).Type != value.Char(20) {
		t.Errorf("col 0 = %v", s.Column(0).Type)
	}
	if s.Column(1).Type != value.Int32() {
		t.Errorf("col 1 = %v", s.Column(1).Type)
	}
	if s.Column(2).Type != value.Int64() {
		t.Errorf("col 2 = %v", s.Column(2).Type)
	}
	if s.Column(3).Type != value.VarChar(50) {
		t.Errorf("col 3 = %v", s.Column(3).Type)
	}
}

func TestParseSchemaSpecErrors(t *testing.T) {
	cases := []string{
		"",
		"name",         // missing kind
		"name:char",    // missing length
		"name:char:x",  // bad length
		"name:float",   // unknown kind
		"a:int,a:int",  // duplicate
		"name:char:0",  // invalid length
		"name:varchar", // missing length
	}
	for _, spec := range cases {
		if _, err := ParseSchemaSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	spec := "name:char:20,qty:int,total:bigint,note:varchar:50"
	s, err := ParseSchemaSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSchemaSpec(s); got != spec {
		t.Fatalf("FormatSchemaSpec = %q, want %q", got, spec)
	}
}

func TestReadRows(t *testing.T) {
	s, err := ParseSchemaSpec("name:char:10,qty:int")
	if err != nil {
		t.Fatal(err)
	}
	csvData := "name,qty\nwidget,5\ngadget,-17\n"
	rows, err := ReadRows(strings.NewReader(csvData), s, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if string(rows[0][0]) != "widget" || value.DecodeInt32(rows[0][1]) != 5 {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if value.DecodeInt32(rows[1][1]) != -17 {
		t.Fatalf("row 1 qty = %d", value.DecodeInt32(rows[1][1]))
	}
}

func TestReadRowsErrors(t *testing.T) {
	s, err := ParseSchemaSpec("name:char:4,qty:int")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, data string
		header     bool
	}{
		{"bad header", "wrong,qty\na,1\n", true},
		{"too long", "name,qty\ntoolong,1\n", true},
		{"bad int", "name,qty\nab,xyz\n", true},
		{"wrong arity", "ab\n", false},
	}
	for _, c := range cases {
		if _, err := ReadRows(strings.NewReader(c.data), s, c.header); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	col, err := workload.NewStringColumn(value.Char(12), distrib.NewUniform(20), distrib.NewUniformLen(1, 8), 3)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := workload.NewIntColumn(value.Int64(), distrib.NewUniform(100), -50)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "t", N: 100, Seed: 9,
		Cols: []workload.SpecColumn{{Name: "s", Gen: col}, {Name: "v", Gen: ic}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRows(&buf, tab); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadRows(&buf, tab.Schema(), true)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != tab.NumRows() {
		t.Fatalf("round trip rows = %d", len(rows))
	}
	for i := range rows {
		orig, _ := tab.Row(int64(i))
		if string(rows[i][0]) != string(orig[0]) {
			t.Fatalf("row %d name: %q vs %q", i, rows[i][0], orig[0])
		}
		if value.DecodeInt64(rows[i][1]) != value.DecodeInt64(orig[1]) {
			t.Fatalf("row %d int mismatch", i)
		}
	}
}
