// Package csvio moves tables between CSV files and the in-memory table
// representation, for the command-line tools (cmd/cfest, cmd/datagen).
//
// Schema specifications use a compact flag-friendly syntax:
//
//	"name:char:20,qty:int,total:bigint,note:varchar:100"
//
// i.e. comma-separated column specs of the form NAME:KIND[:LENGTH], with
// kinds char, varchar (length required), int, bigint.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"samplecf/internal/value"
)

// ParseSchemaSpec parses the compact schema syntax described in the package
// comment.
func ParseSchemaSpec(spec string) (*value.Schema, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("csvio: empty schema spec")
	}
	var cols []value.Column
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("csvio: column spec %q needs NAME:KIND[:LENGTH]", part)
		}
		name := strings.TrimSpace(fields[0])
		kind := strings.ToLower(strings.TrimSpace(fields[1]))
		var t value.Type
		switch kind {
		case "char", "varchar":
			if len(fields) != 3 {
				return nil, fmt.Errorf("csvio: %q requires a length (e.g. %s:%s:20)", part, name, kind)
			}
			l, err := strconv.Atoi(strings.TrimSpace(fields[2]))
			if err != nil {
				return nil, fmt.Errorf("csvio: bad length in %q: %w", part, err)
			}
			if kind == "char" {
				t = value.Char(l)
			} else {
				t = value.VarChar(l)
			}
		case "int", "int32":
			t = value.Int32()
		case "bigint", "int64":
			t = value.Int64()
		default:
			return nil, fmt.Errorf("csvio: unknown kind %q in %q (want char/varchar/int/bigint)", kind, part)
		}
		cols = append(cols, value.Column{Name: name, Type: t})
	}
	return value.NewSchema(cols...)
}

// FormatSchemaSpec renders a schema back into the compact syntax.
func FormatSchemaSpec(s *value.Schema) string {
	parts := make([]string, s.NumColumns())
	for i := 0; i < s.NumColumns(); i++ {
		c := s.Column(i)
		switch c.Type.Kind {
		case value.KindChar:
			parts[i] = fmt.Sprintf("%s:char:%d", c.Name, c.Type.Length)
		case value.KindVarChar:
			parts[i] = fmt.Sprintf("%s:varchar:%d", c.Name, c.Type.Length)
		case value.KindInt32:
			parts[i] = fmt.Sprintf("%s:int", c.Name)
		case value.KindInt64:
			parts[i] = fmt.Sprintf("%s:bigint", c.Name)
		}
	}
	return strings.Join(parts, ",")
}

// ReadRows parses CSV data into rows under schema. When header is true the
// first record is validated against the schema's column names.
func ReadRows(r io.Reader, schema *value.Schema, header bool) ([]value.Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.NumColumns()
	var rows []value.Row
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: read: %w", err)
		}
		if first && header {
			first = false
			for i, name := range rec {
				if name != schema.Column(i).Name {
					return nil, fmt.Errorf("csvio: header column %d is %q, schema says %q", i, name, schema.Column(i).Name)
				}
			}
			continue
		}
		first = false
		row := make(value.Row, len(rec))
		for i, cell := range rec {
			payload, err := parseCell(schema.Column(i).Type, cell)
			if err != nil {
				return nil, fmt.Errorf("csvio: row %d column %q: %w", len(rows)+1, schema.Column(i).Name, err)
			}
			row[i] = payload
		}
		if err := value.ValidateRow(schema, row); err != nil {
			return nil, fmt.Errorf("csvio: row %d: %w", len(rows)+1, err)
		}
		rows = append(rows, row)
	}
}

// parseCell converts one CSV cell into a typed payload.
func parseCell(t value.Type, cell string) ([]byte, error) {
	switch t.Kind {
	case value.KindChar, value.KindVarChar:
		if len(cell) > t.Length {
			return nil, fmt.Errorf("value %q exceeds %s", cell, t)
		}
		return []byte(cell), nil
	case value.KindInt32:
		v, err := strconv.ParseInt(cell, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad INT %q: %w", cell, err)
		}
		return value.IntValue(int32(v)), nil
	case value.KindInt64:
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad BIGINT %q: %w", cell, err)
		}
		return value.Int64Value(v), nil
	default:
		return nil, fmt.Errorf("unsupported type %v", t)
	}
}

// Scanner is the row-iteration shape WriteRows consumes (satisfied by
// workload.Table and workload.VirtualTable).
type Scanner interface {
	Schema() *value.Schema
	Scan(fn func(i int64, row value.Row) error) error
}

// WriteRows emits a table as CSV, with a header row.
func WriteRows(w io.Writer, src Scanner) error {
	schema := src.Schema()
	cw := csv.NewWriter(w)
	header := make([]string, schema.NumColumns())
	for i := 0; i < schema.NumColumns(); i++ {
		header[i] = schema.Column(i).Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csvio: write header: %w", err)
	}
	cells := make([]string, schema.NumColumns())
	err := src.Scan(func(_ int64, row value.Row) error {
		for i, payload := range row {
			switch schema.Column(i).Type.Kind {
			case value.KindInt32:
				cells[i] = strconv.FormatInt(int64(value.DecodeInt32(payload)), 10)
			case value.KindInt64:
				cells[i] = strconv.FormatInt(value.DecodeInt64(payload), 10)
			default:
				cells[i] = string(payload)
			}
		}
		return cw.Write(cells)
	})
	if err != nil {
		return fmt.Errorf("csvio: write rows: %w", err)
	}
	cw.Flush()
	return cw.Error()
}
