// Package physdesign implements the application the paper's introduction
// motivates SampleCF with: an automated physical design tool that must pick
// indexes (possibly compressed) under a storage bound, and therefore needs
// fast, accurate compressed-size estimates — building every candidate just
// to size it is exactly the "prohibitively inefficient" path.
//
// The advisor is intentionally small but end-to-end: it enumerates
// candidate (index, codec) pairs, sizes each with SampleCF instead of
// building it, scores workload benefit with a page-count I/O model plus a
// CPU decompression penalty, and greedily packs the storage budget by
// benefit density. Its fidelity target is "faithful to the paper's
// motivation", not "competitor to commercial tuning advisors".
package physdesign

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"strings"

	"samplecf/internal/catalog"
	"samplecf/internal/compress"
	"samplecf/internal/engine"
	"samplecf/internal/page"
	"samplecf/internal/value"
)

// Query is one workload statement: the column sequence it filters/orders by,
// its relative weight, and the fraction of the table it touches.
type Query struct {
	Name        string
	Columns     []string
	Weight      float64
	Selectivity float64 // fraction of rows touched through an index
}

// Table is the advisor's view of a base table: the versioned catalog
// abstraction shared with the engine.
type Table = catalog.Table

// Candidate is one index design option: a key column sequence and a codec
// (nil codec = uncompressed).
type Candidate struct {
	Name       string
	Table      Table
	KeyColumns []string
	Codec      compress.Codec
}

// Sized is a candidate with its estimated storage footprint.
type Sized struct {
	Candidate
	// EstimatedCF is SampleCF's estimate (1.0 for uncompressed candidates).
	EstimatedCF float64
	// UncompressedBytes is the fixed-width leaf size n·rowWidth(key).
	UncompressedBytes int64
	// EstimatedBytes is CF × UncompressedBytes.
	EstimatedBytes int64

	// Adaptive-sizing outcome (zero when Options.TargetError is unset):
	// AchievedError is the CF estimate's CI half-width, SampleRows the
	// rows spent, Rounds the adaptive rounds run, and Refined whether the
	// candidate survived coarse screening and was re-sized at the full
	// target precision (false = eliminated on the coarse front, where its
	// loose estimate already could not win its index-key group).
	AchievedError float64
	SampleRows    int64
	Rounds        int
	Refined       bool
}

// Options tune the advisor.
type Options struct {
	// SampleFraction is SampleCF's f (default 0.01).
	SampleFraction float64
	// Seed fixes the sampling randomness.
	Seed uint64
	// PageSize is used for page-count cost modeling (default 8 KiB).
	PageSize int
	// CPUPenalty multiplies the I/O saving of a compressed index to model
	// decompression cost; 0.2 means compressed pages cost 20% extra to
	// consume (default 0.2).
	CPUPenalty float64
	// Engine sizes candidates when set: batch what-if calls share one
	// sample per (table, fraction, seed) and hit the engine's result cache
	// across Recommend calls. Nil means a private engine is created per
	// sizing batch (same estimates, no cross-call reuse).
	Engine *engine.Engine
	// Context bounds candidate sizing (nil = no deadline).
	Context context.Context

	// TargetError switches sizing to coarse-to-fine adaptive estimation:
	// every candidate is first screened at CoarseError precision, then
	// only the candidates still able to win their (table, key columns)
	// group — the ones whose coarse size interval overlaps the group's
	// best — are refined to TargetError. Advisor cost drops from
	// O(candidates × r_full) to O(candidates × r_coarse + survivors ×
	// r_full). Zero keeps the fixed-fraction path byte-identical.
	TargetError float64
	// CoarseError is the screening precision (default 4 × TargetError,
	// capped below 0.5).
	CoarseError float64
	// Confidence is the adaptive CI confidence level (default 0.95).
	Confidence float64
	// MaxSampleRows caps each candidate's adaptive row budget (default:
	// table size).
	MaxSampleRows int64
}

func (o Options) withDefaults() Options {
	if o.SampleFraction == 0 {
		o.SampleFraction = 0.01
	}
	if o.PageSize == 0 {
		o.PageSize = page.DefaultSize
	}
	if o.CPUPenalty == 0 {
		o.CPUPenalty = 0.2
	}
	if o.TargetError > 0 && o.CoarseError == 0 {
		o.CoarseError = 4 * o.TargetError
		if o.CoarseError > 0.5 {
			o.CoarseError = 0.5
		}
	}
	if o.CoarseError < o.TargetError {
		o.CoarseError = o.TargetError
	}
	return o
}

// SizeCandidate estimates one candidate's footprint via SampleCF (or
// trivially, for uncompressed candidates).
func SizeCandidate(c Candidate, opts Options) (Sized, error) {
	sized, err := SizeCandidates([]Candidate{c}, opts)
	if err != nil {
		return Sized{}, err
	}
	return sized[0], nil
}

// SizeCandidates estimates every candidate's footprint in one engine batch:
// all compressed candidates over the same table share a single sample, and
// every codec of the same key column set shares one sorted index build.
// This is the advisor's enumeration path — sizing N candidates costs one
// sample + one sort per distinct column set, not N of each.
//
// With Options.TargetError set, sizing becomes coarse-to-fine successive
// halving instead: one loose adaptive pass screens everything, then only
// the candidates whose coarse size interval keeps them in contention for
// their (table, key columns) group are re-sized at the full target
// precision — the advisor's enumeration spends full-precision samples only
// where the decision needs them.
func SizeCandidates(cands []Candidate, opts Options) ([]Sized, error) {
	opts = opts.withDefaults()
	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Config{PageSize: opts.PageSize})
		defer eng.Close()
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	sized := make([]Sized, len(cands))
	var compressed []int // indices of candidates that need estimation
	for i, c := range cands {
		keySchema, err := keySchemaOf(c)
		if err != nil {
			return nil, fmt.Errorf("physdesign: size %s: %w", c.Name, err)
		}
		uncompressed := c.Table.NumRows() * int64(keySchema.RowWidth())
		sized[i] = Sized{Candidate: c, EstimatedCF: 1.0, UncompressedBytes: uncompressed, EstimatedBytes: uncompressed}
		if c.Codec != nil {
			compressed = append(compressed, i)
		}
	}
	if opts.TargetError > 0 {
		if err := sizeAdaptive(ctx, eng, cands, sized, compressed, opts); err != nil {
			return nil, err
		}
		return sized, nil
	}
	if err := sizeBatch(ctx, eng, cands, sized, compressed, opts, 0); err != nil {
		return nil, err
	}
	return sized, nil
}

// sizeBatch sizes the candidates at the given indices in one engine batch.
// targetError 0 is the fixed-fraction path; > 0 requests precision-targeted
// adaptive estimation at that half-width.
func sizeBatch(ctx context.Context, eng *engine.Engine, cands []Candidate, sized []Sized, idx []int, opts Options, targetError float64) error {
	reqs := make([]engine.Request, 0, len(idx))
	for _, i := range idx {
		req := engine.Request{
			Table:      cands[i].Table,
			KeyColumns: cands[i].KeyColumns,
			Codec:      cands[i].Codec,
			Seed:       opts.Seed,
			PageSize:   opts.PageSize,
		}
		if targetError > 0 {
			req.TargetError = targetError
			req.Confidence = opts.Confidence
			req.MaxSampleRows = opts.MaxSampleRows
		} else {
			req.Fraction = opts.SampleFraction
		}
		reqs = append(reqs, req)
	}
	for j, res := range eng.WhatIf(ctx, reqs) {
		i := idx[j]
		if res.Err != nil {
			return fmt.Errorf("physdesign: size %s: %w", cands[i].Name, res.Err)
		}
		sized[i].EstimatedCF = res.Estimate.CF
		sized[i].EstimatedBytes = int64(res.Estimate.CF * float64(sized[i].UncompressedBytes))
		sized[i].AchievedError = res.AchievedError
		sized[i].SampleRows = res.Estimate.SampleRows
		sized[i].Rounds = res.Rounds
	}
	return nil
}

// sizeAdaptive is the coarse-to-fine pass: screen every compressed
// candidate at Options.CoarseError, keep per (table, key columns) group
// only the candidates whose size interval overlaps the group's best —
// the surviving front — and re-size those at Options.TargetError.
func sizeAdaptive(ctx context.Context, eng *engine.Engine, cands []Candidate, sized []Sized, compressed []int, opts Options) error {
	if err := sizeBatch(ctx, eng, cands, sized, compressed, opts, opts.CoarseError); err != nil {
		return err
	}
	if opts.CoarseError <= opts.TargetError {
		// No refinement headroom: the screen already ran at target.
		for _, i := range compressed {
			sized[i].Refined = true
		}
		return nil
	}
	// Group by (table instance, key columns): Recommend keeps at most one
	// candidate per group, so codecs compete within it. A candidate stays
	// on the front iff its optimistic size (CI low end) beats the most
	// pessimistic size (CI high end) of the group's best — everything else
	// is CI-separated from winning and keeps its coarse estimate.
	type groupKey struct {
		inst uint64
		cols string
	}
	bestHi := make(map[groupKey]int64)
	lo := func(i int) int64 {
		cf := sized[i].EstimatedCF - sized[i].AchievedError
		if cf < 0 {
			cf = 0
		}
		return int64(cf * float64(sized[i].UncompressedBytes))
	}
	hi := func(i int) int64 {
		cf := sized[i].EstimatedCF + sized[i].AchievedError
		if cf > 1 {
			cf = 1
		}
		return int64(cf * float64(sized[i].UncompressedBytes))
	}
	key := func(i int) groupKey {
		return groupKey{inst: cands[i].Table.InstanceID(), cols: strings.Join(cands[i].KeyColumns, "\x00")}
	}
	for _, i := range compressed {
		k := key(i)
		if h, ok := bestHi[k]; !ok || hi(i) < h {
			bestHi[k] = hi(i)
		}
	}
	var survivors []int
	for _, i := range compressed {
		if lo(i) <= bestHi[key(i)] {
			survivors = append(survivors, i)
			sized[i].Refined = true
		}
	}
	return sizeBatch(ctx, eng, cands, sized, survivors, opts, opts.TargetError)
}

// keySchemaOf resolves a candidate's key schema.
func keySchemaOf(c Candidate) (*value.Schema, error) {
	if len(c.KeyColumns) == 0 {
		return c.Table.Schema(), nil
	}
	return c.Table.Schema().Project(c.KeyColumns...)
}

// Benefit scores how much the workload gains from a sized candidate.
//
// Cost model: without the index, a query scans the whole table
// (tablePages). With a covering index, it reads selectivity × indexPages,
// where indexPages shrinks with CF; compressed page consumption is
// inflated by CPUPenalty. An index covers a query if the query's column
// sequence is a prefix of the index key.
func Benefit(s Sized, queries []Query, opts Options) float64 {
	opts = opts.withDefaults()
	tableBytes := s.Table.NumRows() * int64(s.Table.Schema().RowWidth())
	tablePages := pagesOf(tableBytes, opts.PageSize)
	indexPages := pagesOf(s.EstimatedBytes, opts.PageSize)
	penalty := 1.0
	if s.Codec != nil {
		penalty = 1 + opts.CPUPenalty
	}
	var total float64
	for _, q := range queries {
		if !covers(s.KeyColumns, q.Columns, s.Table.Schema()) {
			continue
		}
		fullScan := float64(tablePages)
		viaIndex := q.Selectivity * float64(indexPages) * penalty
		if gain := fullScan - viaIndex; gain > 0 {
			total += q.Weight * gain
		}
	}
	return total
}

// covers reports whether the query's columns are a prefix of the index key.
// An empty index key means "all table columns in schema order".
func covers(indexCols, queryCols []string, schema *value.Schema) bool {
	key := indexCols
	if len(key) == 0 {
		cols := schema.Columns()
		key = make([]string, len(cols))
		for i, c := range cols {
			key[i] = c.Name
		}
	}
	if len(queryCols) > len(key) {
		return false
	}
	for i, qc := range queryCols {
		if key[i] != qc {
			return false
		}
	}
	return true
}

// pagesOf converts a byte size into whole pages.
func pagesOf(bytes int64, pageSize int) int64 {
	return (bytes + int64(pageSize) - 1) / int64(pageSize)
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Chosen       []Sized
	TotalBytes   int64
	TotalBenefit float64
	// Rejected records candidates skipped with the reason, for
	// explainability.
	Rejected []string
}

// Recommend greedily selects candidates by benefit-per-byte under the
// storage budget. At most one candidate per (table, key columns) pair is
// chosen (an index exists in one compression state).
func Recommend(cands []Candidate, queries []Query, budgetBytes int64, opts Options) (Recommendation, error) {
	opts = opts.withDefaults()
	if budgetBytes <= 0 {
		return Recommendation{}, fmt.Errorf("physdesign: budget %d must be positive", budgetBytes)
	}
	sized, err := SizeCandidates(cands, opts)
	if err != nil {
		return Recommendation{}, err
	}
	type scored struct {
		s       Sized
		benefit float64
		density float64
	}
	scoredList := make([]scored, 0, len(sized))
	for _, s := range sized {
		b := Benefit(s, queries, opts)
		density := 0.0
		if s.EstimatedBytes > 0 {
			density = b / float64(s.EstimatedBytes)
		}
		scoredList = append(scoredList, scored{s: s, benefit: b, density: density})
	}
	slices.SortStableFunc(scoredList, func(a, b scored) int {
		return cmp.Compare(b.density, a.density)
	})

	var rec Recommendation
	usedKey := map[string]bool{}
	for _, sc := range scoredList {
		keyID := fmt.Sprintf("%s|%v", sc.s.Table.Name(), sc.s.KeyColumns)
		switch {
		case sc.benefit <= 0:
			rec.Rejected = append(rec.Rejected, fmt.Sprintf("%s: no workload benefit", sc.s.Name))
		case usedKey[keyID]:
			rec.Rejected = append(rec.Rejected, fmt.Sprintf("%s: key already indexed", sc.s.Name))
		case rec.TotalBytes+sc.s.EstimatedBytes > budgetBytes:
			rec.Rejected = append(rec.Rejected, fmt.Sprintf("%s: exceeds budget (%d + %d > %d)",
				sc.s.Name, rec.TotalBytes, sc.s.EstimatedBytes, budgetBytes))
		default:
			rec.Chosen = append(rec.Chosen, sc.s)
			rec.TotalBytes += sc.s.EstimatedBytes
			rec.TotalBenefit += sc.benefit
			usedKey[keyID] = true
		}
	}
	return rec, nil
}
