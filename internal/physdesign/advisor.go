// Package physdesign implements the application the paper's introduction
// motivates SampleCF with: an automated physical design tool that must pick
// indexes (possibly compressed) under a storage bound, and therefore needs
// fast, accurate compressed-size estimates — building every candidate just
// to size it is exactly the "prohibitively inefficient" path.
//
// The advisor is intentionally small but end-to-end: it enumerates
// candidate (index, codec) pairs, sizes each with SampleCF instead of
// building it, scores workload benefit with a page-count I/O model plus a
// CPU decompression penalty, and greedily packs the storage budget by
// benefit density. Its fidelity target is "faithful to the paper's
// motivation", not "competitor to commercial tuning advisors".
package physdesign

import (
	"context"
	"fmt"
	"sort"

	"samplecf/internal/catalog"
	"samplecf/internal/compress"
	"samplecf/internal/engine"
	"samplecf/internal/page"
	"samplecf/internal/value"
)

// Query is one workload statement: the column sequence it filters/orders by,
// its relative weight, and the fraction of the table it touches.
type Query struct {
	Name        string
	Columns     []string
	Weight      float64
	Selectivity float64 // fraction of rows touched through an index
}

// Table is the advisor's view of a base table: the versioned catalog
// abstraction shared with the engine.
type Table = catalog.Table

// Candidate is one index design option: a key column sequence and a codec
// (nil codec = uncompressed).
type Candidate struct {
	Name       string
	Table      Table
	KeyColumns []string
	Codec      compress.Codec
}

// Sized is a candidate with its estimated storage footprint.
type Sized struct {
	Candidate
	// EstimatedCF is SampleCF's estimate (1.0 for uncompressed candidates).
	EstimatedCF float64
	// UncompressedBytes is the fixed-width leaf size n·rowWidth(key).
	UncompressedBytes int64
	// EstimatedBytes is CF × UncompressedBytes.
	EstimatedBytes int64
}

// Options tune the advisor.
type Options struct {
	// SampleFraction is SampleCF's f (default 0.01).
	SampleFraction float64
	// Seed fixes the sampling randomness.
	Seed uint64
	// PageSize is used for page-count cost modeling (default 8 KiB).
	PageSize int
	// CPUPenalty multiplies the I/O saving of a compressed index to model
	// decompression cost; 0.2 means compressed pages cost 20% extra to
	// consume (default 0.2).
	CPUPenalty float64
	// Engine sizes candidates when set: batch what-if calls share one
	// sample per (table, fraction, seed) and hit the engine's result cache
	// across Recommend calls. Nil means a private engine is created per
	// sizing batch (same estimates, no cross-call reuse).
	Engine *engine.Engine
	// Context bounds candidate sizing (nil = no deadline).
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.SampleFraction == 0 {
		o.SampleFraction = 0.01
	}
	if o.PageSize == 0 {
		o.PageSize = page.DefaultSize
	}
	if o.CPUPenalty == 0 {
		o.CPUPenalty = 0.2
	}
	return o
}

// SizeCandidate estimates one candidate's footprint via SampleCF (or
// trivially, for uncompressed candidates).
func SizeCandidate(c Candidate, opts Options) (Sized, error) {
	sized, err := SizeCandidates([]Candidate{c}, opts)
	if err != nil {
		return Sized{}, err
	}
	return sized[0], nil
}

// SizeCandidates estimates every candidate's footprint in one engine batch:
// all compressed candidates over the same table share a single sample, and
// every codec of the same key column set shares one sorted index build.
// This is the advisor's enumeration path — sizing N candidates costs one
// sample + one sort per distinct column set, not N of each.
func SizeCandidates(cands []Candidate, opts Options) ([]Sized, error) {
	opts = opts.withDefaults()
	eng := opts.Engine
	if eng == nil {
		eng = engine.New(engine.Config{PageSize: opts.PageSize})
		defer eng.Close()
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	sized := make([]Sized, len(cands))
	var reqs []engine.Request
	var reqIdx []int // reqs[j] sizes cands[reqIdx[j]]
	for i, c := range cands {
		keySchema, err := keySchemaOf(c)
		if err != nil {
			return nil, fmt.Errorf("physdesign: size %s: %w", c.Name, err)
		}
		uncompressed := c.Table.NumRows() * int64(keySchema.RowWidth())
		sized[i] = Sized{Candidate: c, EstimatedCF: 1.0, UncompressedBytes: uncompressed, EstimatedBytes: uncompressed}
		if c.Codec == nil {
			continue
		}
		reqs = append(reqs, engine.Request{
			Table:      c.Table,
			KeyColumns: c.KeyColumns,
			Codec:      c.Codec,
			Fraction:   opts.SampleFraction,
			Seed:       opts.Seed,
			PageSize:   opts.PageSize,
		})
		reqIdx = append(reqIdx, i)
	}
	for j, res := range eng.WhatIf(ctx, reqs) {
		i := reqIdx[j]
		if res.Err != nil {
			return nil, fmt.Errorf("physdesign: size %s: %w", cands[i].Name, res.Err)
		}
		sized[i].EstimatedCF = res.Estimate.CF
		sized[i].EstimatedBytes = int64(res.Estimate.CF * float64(sized[i].UncompressedBytes))
	}
	return sized, nil
}

// keySchemaOf resolves a candidate's key schema.
func keySchemaOf(c Candidate) (*value.Schema, error) {
	if len(c.KeyColumns) == 0 {
		return c.Table.Schema(), nil
	}
	return c.Table.Schema().Project(c.KeyColumns...)
}

// Benefit scores how much the workload gains from a sized candidate.
//
// Cost model: without the index, a query scans the whole table
// (tablePages). With a covering index, it reads selectivity × indexPages,
// where indexPages shrinks with CF; compressed page consumption is
// inflated by CPUPenalty. An index covers a query if the query's column
// sequence is a prefix of the index key.
func Benefit(s Sized, queries []Query, opts Options) float64 {
	opts = opts.withDefaults()
	tableBytes := s.Table.NumRows() * int64(s.Table.Schema().RowWidth())
	tablePages := pagesOf(tableBytes, opts.PageSize)
	indexPages := pagesOf(s.EstimatedBytes, opts.PageSize)
	penalty := 1.0
	if s.Codec != nil {
		penalty = 1 + opts.CPUPenalty
	}
	var total float64
	for _, q := range queries {
		if !covers(s.KeyColumns, q.Columns, s.Table.Schema()) {
			continue
		}
		fullScan := float64(tablePages)
		viaIndex := q.Selectivity * float64(indexPages) * penalty
		if gain := fullScan - viaIndex; gain > 0 {
			total += q.Weight * gain
		}
	}
	return total
}

// covers reports whether the query's columns are a prefix of the index key.
// An empty index key means "all table columns in schema order".
func covers(indexCols, queryCols []string, schema *value.Schema) bool {
	key := indexCols
	if len(key) == 0 {
		cols := schema.Columns()
		key = make([]string, len(cols))
		for i, c := range cols {
			key[i] = c.Name
		}
	}
	if len(queryCols) > len(key) {
		return false
	}
	for i, qc := range queryCols {
		if key[i] != qc {
			return false
		}
	}
	return true
}

// pagesOf converts a byte size into whole pages.
func pagesOf(bytes int64, pageSize int) int64 {
	return (bytes + int64(pageSize) - 1) / int64(pageSize)
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Chosen       []Sized
	TotalBytes   int64
	TotalBenefit float64
	// Rejected records candidates skipped with the reason, for
	// explainability.
	Rejected []string
}

// Recommend greedily selects candidates by benefit-per-byte under the
// storage budget. At most one candidate per (table, key columns) pair is
// chosen (an index exists in one compression state).
func Recommend(cands []Candidate, queries []Query, budgetBytes int64, opts Options) (Recommendation, error) {
	opts = opts.withDefaults()
	if budgetBytes <= 0 {
		return Recommendation{}, fmt.Errorf("physdesign: budget %d must be positive", budgetBytes)
	}
	sized, err := SizeCandidates(cands, opts)
	if err != nil {
		return Recommendation{}, err
	}
	type scored struct {
		s       Sized
		benefit float64
		density float64
	}
	scoredList := make([]scored, 0, len(sized))
	for _, s := range sized {
		b := Benefit(s, queries, opts)
		density := 0.0
		if s.EstimatedBytes > 0 {
			density = b / float64(s.EstimatedBytes)
		}
		scoredList = append(scoredList, scored{s: s, benefit: b, density: density})
	}
	sort.SliceStable(scoredList, func(i, j int) bool {
		return scoredList[i].density > scoredList[j].density
	})

	var rec Recommendation
	usedKey := map[string]bool{}
	for _, sc := range scoredList {
		keyID := fmt.Sprintf("%s|%v", sc.s.Table.Name(), sc.s.KeyColumns)
		switch {
		case sc.benefit <= 0:
			rec.Rejected = append(rec.Rejected, fmt.Sprintf("%s: no workload benefit", sc.s.Name))
		case usedKey[keyID]:
			rec.Rejected = append(rec.Rejected, fmt.Sprintf("%s: key already indexed", sc.s.Name))
		case rec.TotalBytes+sc.s.EstimatedBytes > budgetBytes:
			rec.Rejected = append(rec.Rejected, fmt.Sprintf("%s: exceeds budget (%d + %d > %d)",
				sc.s.Name, rec.TotalBytes, sc.s.EstimatedBytes, budgetBytes))
		default:
			rec.Chosen = append(rec.Chosen, sc.s)
			rec.TotalBytes += sc.s.EstimatedBytes
			rec.TotalBenefit += sc.benefit
			usedKey[keyID] = true
		}
	}
	return rec, nil
}
