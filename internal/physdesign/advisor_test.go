package physdesign

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"samplecf/internal/compress"
	"samplecf/internal/core"
	"samplecf/internal/distrib"
	"samplecf/internal/engine"
	"samplecf/internal/value"
	"samplecf/internal/workload"
)

// advisorTable builds a two-column table: a compressible CHAR(30) name
// column (few distinct, short values) and an INT id column.
func advisorTable(t testing.TB, n int64) *workload.Table {
	t.Helper()
	name, err := workload.NewStringColumn(value.Char(30), distrib.NewUniform(50), distrib.NewUniformLen(3, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	id, err := workload.NewIntColumn(value.Int32(), distrib.NewUniform(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := workload.Generate(workload.Spec{
		Name: "orders", N: n, Seed: 7,
		Cols: []workload.SpecColumn{{Name: "name", Gen: name}, {Name: "id", Gen: id}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func mustCodec(t testing.TB, name string) compress.Codec {
	t.Helper()
	c, err := compress.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSizeCandidateUncompressed(t *testing.T) {
	tab := advisorTable(t, 2000)
	s, err := SizeCandidate(Candidate{
		Name: "ix_name", Table: tab, KeyColumns: []string{"name"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.EstimatedCF != 1.0 {
		t.Fatalf("uncompressed CF = %v", s.EstimatedCF)
	}
	if s.EstimatedBytes != 2000*30 {
		t.Fatalf("bytes = %d, want %d", s.EstimatedBytes, 2000*30)
	}
}

func TestSizeCandidateCompressedCloseToTruth(t *testing.T) {
	tab := advisorTable(t, 5000)
	codec := mustCodec(t, "nullsuppression")
	s, err := SizeCandidate(Candidate{
		Name: "ix_name_row", Table: tab, KeyColumns: []string{"name"}, Codec: codec,
	}, Options{SampleFraction: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.TrueCF(tab, []string{"name"}, codec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.EstimatedCF-truth.CF()) > 0.05 {
		t.Fatalf("estimated CF %v vs truth %v", s.EstimatedCF, truth.CF())
	}
	if s.EstimatedBytes >= s.UncompressedBytes {
		t.Fatalf("compression did not shrink: %d vs %d", s.EstimatedBytes, s.UncompressedBytes)
	}
}

// TestSizeCandidatesSharesOneSample checks the batch sizing path draws a
// single sample for a mixed candidate list and that a shared engine's
// cache answers a repeat call without new sampling.
func TestSizeCandidatesSharesOneSample(t *testing.T) {
	tab := advisorTable(t, 5000)
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	cands := []Candidate{
		{Name: "u", Table: tab, KeyColumns: []string{"name"}},
		{Name: "ns", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "nullsuppression")},
		{Name: "rle", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "rle")},
		{Name: "id-ns", Table: tab, KeyColumns: []string{"id"}, Codec: mustCodec(t, "nullsuppression")},
	}
	opts := Options{SampleFraction: 0.05, Seed: 3, Engine: eng}
	first, err := SizeCandidates(cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SamplesDrawn != 1 {
		t.Errorf("SamplesDrawn = %d, want 1", st.SamplesDrawn)
	}
	if st.IndexesPrepared != 2 {
		t.Errorf("IndexesPrepared = %d, want 2 (name, id)", st.IndexesPrepared)
	}
	// Batch sizing must agree with the one-at-a-time path (same seed ⇒
	// same sample ⇒ identical estimates).
	for i, c := range cands {
		single, err := SizeCandidate(c, Options{SampleFraction: 0.05, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if first[i].EstimatedCF != single.EstimatedCF || first[i].EstimatedBytes != single.EstimatedBytes {
			t.Errorf("candidate %s: batch (%v, %d) != single (%v, %d)",
				c.Name, first[i].EstimatedCF, first[i].EstimatedBytes, single.EstimatedCF, single.EstimatedBytes)
		}
	}
	// Repeat through the same engine: all cache hits, no new samples.
	again, err := SizeCandidates(cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cached re-sizing diverged")
	}
	st2 := eng.Stats()
	if st2.SamplesDrawn != st.SamplesDrawn {
		t.Errorf("repeat sizing drew %d new samples", st2.SamplesDrawn-st.SamplesDrawn)
	}
	if st2.Hits == 0 {
		t.Error("repeat sizing produced no cache hits")
	}
}

func TestCovers(t *testing.T) {
	tab := advisorTable(t, 10)
	schema := tab.Schema()
	cases := []struct {
		index, query []string
		want         bool
	}{
		{[]string{"name"}, []string{"name"}, true},
		{[]string{"name", "id"}, []string{"name"}, true},
		{[]string{"name"}, []string{"id"}, false},
		{[]string{"name"}, []string{"name", "id"}, false},
		{nil, []string{"name"}, true},       // full-row index covers prefix
		{nil, []string{"name", "id"}, true}, // and the full column list
		{nil, []string{"id"}, false},
	}
	for _, c := range cases {
		if got := covers(c.index, c.query, schema); got != c.want {
			t.Errorf("covers(%v, %v) = %v, want %v", c.index, c.query, got, c.want)
		}
	}
}

func TestBenefitPrefersCompressedWhenItShrinks(t *testing.T) {
	tab := advisorTable(t, 5000)
	queries := []Query{{Name: "q1", Columns: []string{"name"}, Weight: 1, Selectivity: 0.5}}
	plain, err := SizeCandidate(Candidate{Name: "p", Table: tab, KeyColumns: []string{"name"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := SizeCandidate(Candidate{
		Name: "c", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "nullsuppression"),
	}, Options{SampleFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	bp := Benefit(plain, queries, Options{})
	bc := Benefit(comp, queries, Options{})
	if bc <= bp {
		t.Fatalf("compressed benefit %v not above uncompressed %v (CF %v)", bc, bp, comp.EstimatedCF)
	}
}

func TestBenefitZeroWithoutCoverage(t *testing.T) {
	tab := advisorTable(t, 1000)
	s, err := SizeCandidate(Candidate{Name: "x", Table: tab, KeyColumns: []string{"name"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{{Name: "q", Columns: []string{"id"}, Weight: 1, Selectivity: 0.1}}
	if b := Benefit(s, queries, Options{}); b != 0 {
		t.Fatalf("benefit = %v for non-covering index", b)
	}
}

func TestRecommendRespectsBudget(t *testing.T) {
	tab := advisorTable(t, 5000)
	queries := []Query{
		{Name: "by-name", Columns: []string{"name"}, Weight: 5, Selectivity: 0.1},
		{Name: "by-id", Columns: []string{"id"}, Weight: 2, Selectivity: 0.01},
	}
	cands := []Candidate{
		{Name: "ix_name", Table: tab, KeyColumns: []string{"name"}},
		{Name: "ix_name_row", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "nullsuppression")},
		{Name: "ix_id", Table: tab, KeyColumns: []string{"id"}},
		{Name: "ix_id_row", Table: tab, KeyColumns: []string{"id"}, Codec: mustCodec(t, "nullsuppression")},
	}
	budget := int64(5000 * 30) // room for roughly one uncompressed name index
	rec, err := Recommend(cands, queries, budget, Options{SampleFraction: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalBytes > budget {
		t.Fatalf("recommendation exceeds budget: %d > %d", rec.TotalBytes, budget)
	}
	if len(rec.Chosen) == 0 {
		t.Fatal("nothing chosen despite adequate budget")
	}
	// At most one index per key.
	keys := map[string]bool{}
	for _, s := range rec.Chosen {
		id := s.Table.Name() + "|" + strings.Join(s.KeyColumns, ",")
		if keys[id] {
			t.Fatalf("duplicate key indexed: %s", id)
		}
		keys[id] = true
	}
	// Compressed variants dominate per-byte benefit, so the name index
	// should be the compressed one.
	foundCompressedName := false
	for _, s := range rec.Chosen {
		if s.Name == "ix_name_row" {
			foundCompressedName = true
		}
	}
	if !foundCompressedName {
		t.Fatalf("expected compressed name index; chose %+v", rec.Chosen)
	}
}

func TestRecommendValidation(t *testing.T) {
	if _, err := Recommend(nil, nil, 0, Options{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestRecommendExplainsRejections(t *testing.T) {
	tab := advisorTable(t, 2000)
	queries := []Query{{Name: "q", Columns: []string{"name"}, Weight: 1, Selectivity: 0.2}}
	cands := []Candidate{
		{Name: "useless", Table: tab, KeyColumns: []string{"id"}},
		{Name: "useful", Table: tab, KeyColumns: []string{"name"}},
	}
	rec, err := Recommend(cands, queries, 1<<40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rejected) == 0 {
		t.Fatal("no rejection explanations")
	}
	found := false
	for _, r := range rec.Rejected {
		if strings.Contains(r, "useless") && strings.Contains(r, "no workload benefit") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing explanation, got %v", rec.Rejected)
	}
}

// TestSizeCandidatesCoarseToFine checks the successive-halving path: every
// compressed candidate gets a CI-carrying size, survivors of the coarse
// screen are refined to the full target, and eliminated candidates keep
// their (honest, loose) coarse estimates.
func TestSizeCandidatesCoarseToFine(t *testing.T) {
	tab := advisorTable(t, 30000)
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	cands := []Candidate{
		{Name: "ix_name", Table: tab, KeyColumns: []string{"name"}},
		{Name: "ix_name_ns", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "nullsuppression")},
		{Name: "ix_name_dict", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "pagedict")},
		{Name: "ix_name_rle", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "rle")},
		{Name: "ix_id_ns", Table: tab, KeyColumns: []string{"id"}, Codec: mustCodec(t, "nullsuppression")},
	}
	const target = 0.02
	sized, err := SizeCandidates(cands, Options{
		Engine: eng, TargetError: target, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sized[0].AchievedError != 0 || sized[0].Rounds != 0 {
		t.Errorf("uncompressed candidate carries adaptive metadata: %+v", sized[0])
	}
	refined := 0
	for _, s := range sized[1:] {
		if s.AchievedError <= 0 {
			t.Errorf("%s: no achieved error reported", s.Name)
		}
		if s.SampleRows <= 0 || s.Rounds < 1 {
			t.Errorf("%s: missing sampling metadata: rows=%d rounds=%d", s.Name, s.SampleRows, s.Rounds)
		}
		if s.Refined {
			refined++
			if s.AchievedError > target {
				t.Errorf("%s: refined but achieved ±%v > target ±%v", s.Name, s.AchievedError, target)
			}
		} else if s.AchievedError > 4*target {
			t.Errorf("%s: eliminated candidate exceeds even the coarse precision: ±%v", s.Name, s.AchievedError)
		}
	}
	// The singleton id group has no competition and must be refined; the
	// name group must refine at least its best codec.
	if !sized[4].Refined {
		t.Error("singleton group candidate was not refined")
	}
	if refined < 2 {
		t.Errorf("only %d candidates refined; the front must include each group's best", refined)
	}
	// The group's CI-best candidate is always on the front: no refined
	// candidate in the name group may be dominated by an unrefined one.
	var bestUnrefinedLo, worstRefinedHi int64 = 1 << 62, 0
	for _, s := range sized[1:4] {
		lo := int64((s.EstimatedCF - s.AchievedError) * float64(s.UncompressedBytes))
		hi := int64((s.EstimatedCF + s.AchievedError) * float64(s.UncompressedBytes))
		if s.Refined {
			if hi > worstRefinedHi {
				worstRefinedHi = hi
			}
		} else if lo < bestUnrefinedLo {
			bestUnrefinedLo = lo
		}
	}
	if bestUnrefinedLo < worstRefinedHi && bestUnrefinedLo != 1<<62 {
		// An unrefined candidate overlapping the refined fronts would mean
		// the screen dropped a contender.
		t.Errorf("eliminated candidate (lo %d) still overlaps refined front (hi %d)",
			bestUnrefinedLo, worstRefinedHi)
	}
}

// TestSizeCandidatesFixedPathUnchanged pins that a zero TargetError runs
// the exact legacy fixed-fraction batch — same estimates as a direct
// engine request, no adaptive metadata.
func TestSizeCandidatesFixedPathUnchanged(t *testing.T) {
	tab := advisorTable(t, 5000)
	sized, err := SizeCandidates([]Candidate{
		{Name: "ix", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "nullsuppression")},
	}, Options{SampleFraction: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.SampleCF(tab, tab.Schema(), core.Options{
		Fraction: 0.05, Codec: mustCodec(t, "nullsuppression"),
		KeyColumns: []string{"name"}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sized[0].EstimatedCF != direct.CF {
		t.Fatalf("fixed path drifted: %v vs %v", sized[0].EstimatedCF, direct.CF)
	}
	if sized[0].AchievedError != 0 || sized[0].Rounds != 0 || sized[0].Refined {
		t.Errorf("fixed path carries adaptive metadata: %+v", sized[0])
	}
}

// TestRecommendAdaptive runs the advisor end to end in adaptive mode.
func TestRecommendAdaptive(t *testing.T) {
	tab := advisorTable(t, 20000)
	queries := []Query{{Name: "by-name", Columns: []string{"name"}, Weight: 10, Selectivity: 0.05}}
	cands := []Candidate{
		{Name: "ix_name", Table: tab, KeyColumns: []string{"name"}},
		{Name: "ix_name_ns", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "nullsuppression")},
		{Name: "ix_name_rle", Table: tab, KeyColumns: []string{"name"}, Codec: mustCodec(t, "rle")},
	}
	rec, err := Recommend(cands, queries, 1<<30, Options{TargetError: 0.03, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chosen) == 0 {
		t.Fatal("adaptive advisor chose nothing")
	}
	for _, c := range rec.Chosen {
		if c.Codec != nil && !c.Refined {
			t.Errorf("%s was chosen without full-precision refinement", c.Name)
		}
	}
}
