package distrib

import (
	"fmt"
	"math"

	"samplecf/internal/rng"
)

// Lengths is a distribution over value lengths in bytes, bounded by [Min, Max].
// It controls the null-suppressed length ℓ of generated character values,
// the quantity Theorem 1's variance bound is about.
type Lengths interface {
	// DrawLen samples a length using r. The result is always within
	// [MinLen(), MaxLen()].
	DrawLen(r *rng.RNG) int
	// MinLen and MaxLen bound the support.
	MinLen() int
	MaxLen() int
	// Mean returns the exact expected length (used for closed-form CF).
	Mean() float64
	// Name identifies the distribution in experiment output.
	Name() string
}

// ConstantLen always returns L: every value has the same actual length.
// With L = k this yields incompressible (fully used) CHAR(k) columns.
type ConstantLen struct {
	L int
}

// NewConstantLen returns the constant length distribution. Panics if l < 0.
func NewConstantLen(l int) ConstantLen {
	if l < 0 {
		panic(fmt.Sprintf("distrib: constant length %d must be non-negative", l))
	}
	return ConstantLen{L: l}
}

// DrawLen implements Lengths.
func (c ConstantLen) DrawLen(*rng.RNG) int { return c.L }

// MinLen implements Lengths.
func (c ConstantLen) MinLen() int { return c.L }

// MaxLen implements Lengths.
func (c ConstantLen) MaxLen() int { return c.L }

// Mean implements Lengths.
func (c ConstantLen) Mean() float64 { return float64(c.L) }

// Name implements Lengths.
func (c ConstantLen) Name() string { return fmt.Sprintf("const(%d)", c.L) }

// UniformLen draws lengths uniformly from [Lo, Hi]. This is the
// maximum-variance case for a given range, the regime where Theorem 1's
// bound is closest to tight.
type UniformLen struct {
	Lo, Hi int
}

// NewUniformLen validates the range. Panics unless 0 <= lo <= hi.
func NewUniformLen(lo, hi int) UniformLen {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("distrib: uniform length range [%d,%d] invalid", lo, hi))
	}
	return UniformLen{Lo: lo, Hi: hi}
}

// DrawLen implements Lengths.
func (u UniformLen) DrawLen(r *rng.RNG) int { return u.Lo + r.Intn(u.Hi-u.Lo+1) }

// MinLen implements Lengths.
func (u UniformLen) MinLen() int { return u.Lo }

// MaxLen implements Lengths.
func (u UniformLen) MaxLen() int { return u.Hi }

// Mean implements Lengths.
func (u UniformLen) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

// Name implements Lengths.
func (u UniformLen) Name() string { return fmt.Sprintf("unif[%d,%d]", u.Lo, u.Hi) }

// NormalLen draws lengths from a normal distribution truncated (by clamping)
// to [Lo, Hi]. Models the typical "most values are around the mean" text
// column.
type NormalLen struct {
	Mu, Sigma float64
	Lo, Hi    int
}

// NewNormalLen validates parameters. Panics unless 0 <= lo <= hi and sigma >= 0.
func NewNormalLen(mu, sigma float64, lo, hi int) NormalLen {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("distrib: normal length range [%d,%d] invalid", lo, hi))
	}
	if sigma < 0 {
		panic(fmt.Sprintf("distrib: normal sigma %v must be non-negative", sigma))
	}
	return NormalLen{Mu: mu, Sigma: sigma, Lo: lo, Hi: hi}
}

// DrawLen implements Lengths.
func (n NormalLen) DrawLen(r *rng.RNG) int {
	v := int(math.Round(n.Mu + n.Sigma*r.NormFloat64()))
	if v < n.Lo {
		v = n.Lo
	}
	if v > n.Hi {
		v = n.Hi
	}
	return v
}

// MinLen implements Lengths.
func (n NormalLen) MinLen() int { return n.Lo }

// MaxLen implements Lengths.
func (n NormalLen) MaxLen() int { return n.Hi }

// Mean implements Lengths. The clamping bias is negligible when
// [Lo, Hi] covers ±3σ; we report the exact mean of the clamped variable via
// numeric integration over the discrete support.
func (n NormalLen) Mean() float64 {
	if n.Sigma == 0 {
		v := math.Round(n.Mu)
		if v < float64(n.Lo) {
			v = float64(n.Lo)
		}
		if v > float64(n.Hi) {
			v = float64(n.Hi)
		}
		return v
	}
	// Sum over the support: P(round(X) clamps to l) * l.
	mean := 0.0
	for l := n.Lo; l <= n.Hi; l++ {
		var p float64
		switch l {
		case n.Lo:
			p = normCDF((float64(l)+0.5-n.Mu)/n.Sigma) - 0
		case n.Hi:
			p = 1 - normCDF((float64(l)-0.5-n.Mu)/n.Sigma)
		default:
			p = normCDF((float64(l)+0.5-n.Mu)/n.Sigma) - normCDF((float64(l)-0.5-n.Mu)/n.Sigma)
		}
		mean += p * float64(l)
	}
	return mean
}

// Name implements Lengths.
func (n NormalLen) Name() string {
	return fmt.Sprintf("norm(μ=%.0f,σ=%.0f)[%d,%d]", n.Mu, n.Sigma, n.Lo, n.Hi)
}

// normCDF is the standard normal CDF.
func normCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// BimodalLen draws ShortLen with probability PShort and LongLen otherwise:
// the two-cluster "codes and descriptions in one column" shape, which is the
// worst case for NS variance at a given mean.
type BimodalLen struct {
	ShortLen, LongLen int
	PShort            float64
}

// NewBimodalLen validates parameters.
func NewBimodalLen(short, long int, pShort float64) BimodalLen {
	if short < 0 || long < short {
		panic(fmt.Sprintf("distrib: bimodal lengths (%d,%d) invalid", short, long))
	}
	if pShort < 0 || pShort > 1 {
		panic(fmt.Sprintf("distrib: bimodal pShort %v must be in [0,1]", pShort))
	}
	return BimodalLen{ShortLen: short, LongLen: long, PShort: pShort}
}

// DrawLen implements Lengths.
func (b BimodalLen) DrawLen(r *rng.RNG) int {
	if r.Float64() < b.PShort {
		return b.ShortLen
	}
	return b.LongLen
}

// MinLen implements Lengths.
func (b BimodalLen) MinLen() int { return b.ShortLen }

// MaxLen implements Lengths.
func (b BimodalLen) MaxLen() int { return b.LongLen }

// Mean implements Lengths.
func (b BimodalLen) Mean() float64 {
	return b.PShort*float64(b.ShortLen) + (1-b.PShort)*float64(b.LongLen)
}

// Name implements Lengths.
func (b BimodalLen) Name() string {
	return fmt.Sprintf("bimodal(%d|%d,p=%.2f)", b.ShortLen, b.LongLen, b.PShort)
}
