// Package distrib implements the parameterized value and length
// distributions used by the synthetic workload generators.
//
// The paper's analysis depends on exactly three properties of the data:
// the number of rows n, the number of distinct values d (and their
// frequency skew), and the distribution of null-suppressed lengths ℓ.
// The distributions here sweep those knobs:
//
//   - Discrete distributions choose WHICH distinct value a row holds
//     (uniform, Zipf, self-similar, hot-set, sequential), controlling d and
//     the skew that drives distinct-value estimation difficulty.
//   - Length distributions choose how long each distinct value is,
//     controlling the ℓ spectrum that drives null-suppression variance.
//
// All draws take the caller's RNG so that experiments are reproducible and
// sub-streams (per trial, per row) can be derived deterministically.
package distrib

import (
	"fmt"
	"math"

	"samplecf/internal/rng"
)

// Discrete is a distribution over the domain indices [0, Domain()).
// Domain index i identifies the i-th distinct value of a column.
type Discrete interface {
	// Draw samples a domain index using r.
	Draw(r *rng.RNG) int64
	// Domain returns the domain size d (number of possible distinct values).
	Domain() int64
	// Name identifies the distribution in experiment output.
	Name() string
}

// Uniform draws every domain index with equal probability.
type Uniform struct {
	D int64
}

// NewUniform returns a uniform distribution over [0, d). It panics if d <= 0.
func NewUniform(d int64) Uniform {
	if d <= 0 {
		panic(fmt.Sprintf("distrib: uniform domain %d must be positive", d))
	}
	return Uniform{D: d}
}

// Draw implements Discrete.
func (u Uniform) Draw(r *rng.RNG) int64 { return r.Int63n(u.D) }

// Domain implements Discrete.
func (u Uniform) Domain() int64 { return u.D }

// Name implements Discrete.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(d=%d)", u.D) }

// Zipf draws domain indices with Zipfian skew: P(rank i) ∝ 1/(i+1)^Theta.
// Theta in (0, 1) is the classic database-benchmark regime (Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases", SIGMOD 1994);
// Theta = 0 degenerates to uniform.
type Zipf struct {
	D     int64
	Theta float64

	zetaN float64 // zeta(D, Theta), precomputed
	alpha float64
	eta   float64
}

// maxExactZetaTerms bounds the exact summation when precomputing zeta; the
// tail beyond it is approximated by the integral ∫ x^-θ dx, whose error is
// negligible at that scale.
const maxExactZetaTerms = 1 << 22

// NewZipf precomputes the constants for Gray's quick Zipf sampler.
// It panics if d <= 0 or theta is outside [0, 1).
func NewZipf(d int64, theta float64) *Zipf {
	if d <= 0 {
		panic(fmt.Sprintf("distrib: zipf domain %d must be positive", d))
	}
	if theta < 0 || theta >= 1 {
		panic(fmt.Sprintf("distrib: zipf theta %v must be in [0,1)", theta))
	}
	z := &Zipf{D: d, Theta: theta}
	z.zetaN = zeta(d, theta)
	z.alpha = 1 / (1 - theta)
	zeta2 := zeta(2, theta)
	z.eta = (1 - math.Pow(2/float64(d), 1-theta)) / (1 - zeta2/z.zetaN)
	return z
}

// zeta computes (or approximates, for very large n) the generalized harmonic
// number H_{n,theta} = sum_{i=1..n} i^-theta.
func zeta(n int64, theta float64) float64 {
	exact := n
	if exact > maxExactZetaTerms {
		exact = maxExactZetaTerms
	}
	sum := 0.0
	for i := int64(1); i <= exact; i++ {
		sum += math.Pow(float64(i), -theta)
	}
	if exact < n {
		// Integral tail: ∫_{exact}^{n} x^-θ dx.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exact), 1-theta)) / (1 - theta)
	}
	return sum
}

// Draw implements Discrete using Gray's O(1) approximation. Rank 0 is the
// most frequent value.
func (z *Zipf) Draw(r *rng.RNG) int64 {
	u := r.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.Theta) {
		return 1
	}
	rank := int64(float64(z.D) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.D {
		rank = z.D - 1
	}
	return rank
}

// Domain implements Discrete.
func (z *Zipf) Domain() int64 { return z.D }

// Name implements Discrete.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(d=%d,θ=%.2f)", z.D, z.Theta) }

// SelfSimilar draws from Gray's self-similar (80/20-style) distribution:
// a fraction H of the probability mass lands on the first H·D values,
// recursively.
type SelfSimilar struct {
	D int64
	H float64 // skew, e.g. 0.2 means 80% of draws hit the first 20% of values
}

// NewSelfSimilar validates parameters. It panics if d <= 0 or h ∉ (0, 1).
func NewSelfSimilar(d int64, h float64) SelfSimilar {
	if d <= 0 {
		panic(fmt.Sprintf("distrib: self-similar domain %d must be positive", d))
	}
	if h <= 0 || h >= 1 {
		panic(fmt.Sprintf("distrib: self-similar h %v must be in (0,1)", h))
	}
	return SelfSimilar{D: d, H: h}
}

// Draw implements Discrete. Per Gray et al., drawing D·u^(log h / log(1-h))
// puts 1-h of the mass on the first h·D values, recursively.
func (s SelfSimilar) Draw(r *rng.RNG) int64 {
	u := r.Float64()
	v := int64(float64(s.D) * math.Pow(u, math.Log(s.H)/math.Log(1-s.H)))
	if v >= s.D {
		v = s.D - 1
	}
	return v
}

// Domain implements Discrete.
func (s SelfSimilar) Domain() int64 { return s.D }

// Name implements Discrete.
func (s SelfSimilar) Name() string { return fmt.Sprintf("selfsim(d=%d,h=%.2f)", s.D, s.H) }

// HotSet splits the domain into a hot prefix and a cold suffix: with
// probability HotProb a draw is uniform over the hot values, otherwise
// uniform over the cold ones. It models the "few heavy hitters plus a long
// tail of near-singletons" shape that makes distinct-value estimation hard
// (Charikar et al., PODS 2000).
type HotSet struct {
	D       int64
	HotFrac float64 // fraction of domain that is hot
	HotProb float64 // probability a row draws from the hot set
}

// NewHotSet validates parameters. Both fractions must be in (0, 1).
func NewHotSet(d int64, hotFrac, hotProb float64) HotSet {
	if d <= 0 {
		panic(fmt.Sprintf("distrib: hotset domain %d must be positive", d))
	}
	if hotFrac <= 0 || hotFrac >= 1 || hotProb <= 0 || hotProb >= 1 {
		panic("distrib: hotset fractions must be in (0,1)")
	}
	return HotSet{D: d, HotFrac: hotFrac, HotProb: hotProb}
}

// Draw implements Discrete.
func (h HotSet) Draw(r *rng.RNG) int64 {
	hot := int64(float64(h.D) * h.HotFrac)
	if hot < 1 {
		hot = 1
	}
	if hot >= h.D {
		hot = h.D - 1
	}
	if r.Float64() < h.HotProb {
		return r.Int63n(hot)
	}
	return hot + r.Int63n(h.D-hot)
}

// Domain implements Discrete.
func (h HotSet) Domain() int64 { return h.D }

// Name implements Discrete.
func (h HotSet) Name() string {
	return fmt.Sprintf("hotset(d=%d,%.0f%%→%.0f%%)", h.D, h.HotFrac*100, h.HotProb*100)
}

// Sequential assigns domain indices round-robin: row i gets value i mod D.
// It is the "every value appears n/d times, clustered" layout that makes
// block sampling interesting. Draw picks uniformly (a random row's value is
// uniform); use with workload row-indexed generation for the clustered
// layout.
type Sequential struct {
	D int64
}

// NewSequential returns a sequential distribution. It panics if d <= 0.
func NewSequential(d int64) Sequential {
	if d <= 0 {
		panic(fmt.Sprintf("distrib: sequential domain %d must be positive", d))
	}
	return Sequential{D: d}
}

// Draw implements Discrete.
func (s Sequential) Draw(r *rng.RNG) int64 { return r.Int63n(s.D) }

// Domain implements Discrete.
func (s Sequential) Domain() int64 { return s.D }

// Name implements Discrete.
func (s Sequential) Name() string { return fmt.Sprintf("sequential(d=%d)", s.D) }
