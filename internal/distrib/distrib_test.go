package distrib

import (
	"math"
	"testing"

	"samplecf/internal/rng"
)

func TestUniformCoverage(t *testing.T) {
	const d = 50
	u := NewUniform(d)
	r := rng.New(1)
	seen := make(map[int64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		v := u.Draw(r)
		if v < 0 || v >= d {
			t.Fatalf("draw %d out of domain", v)
		}
		seen[v]++
	}
	if len(seen) != d {
		t.Fatalf("uniform covered %d of %d values", len(seen), d)
	}
	want := float64(n) / d
	for v, c := range seen {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("value %d count %d far from %f", v, c, want)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	z := NewZipf(1000, 0.8)
	r := rng.New(2)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Draw(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf draw %d out of domain", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate, and mass must decay with rank (coarsely).
	if counts[0] < counts[10] {
		t.Errorf("rank 0 (%d) not more frequent than rank 10 (%d)", counts[0], counts[10])
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if frac := float64(head) / n; frac < 0.5 {
		t.Errorf("zipf(0.8): top 10%% of values got %.2f of mass, want > 0.5", frac)
	}
}

func TestZipfThetaZeroIsUniformish(t *testing.T) {
	z := NewZipf(100, 0)
	r := rng.New(3)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	want := float64(n) / 100
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 8*math.Sqrt(want) {
			t.Errorf("theta=0 value %d count %d far from uniform %f", v, c, want)
		}
	}
}

func TestZetaApproximationContinuity(t *testing.T) {
	// The approximate tail must agree with exact summation at moderate n.
	for _, theta := range []float64{0.2, 0.5, 0.9} {
		exact := 0.0
		const n = 100000
		for i := int64(1); i <= n; i++ {
			exact += math.Pow(float64(i), -theta)
		}
		got := zeta(n, theta)
		if math.Abs(got-exact)/exact > 1e-9 {
			t.Errorf("zeta(%d, %v) = %v, want %v", n, theta, got, exact)
		}
	}
}

func TestSelfSimilarSkew(t *testing.T) {
	s := NewSelfSimilar(1000, 0.2)
	r := rng.New(4)
	inHot := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Draw(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("draw %d out of domain", v)
		}
		if v < 200 {
			inHot++
		}
	}
	// By construction ~80% of draws land in the first 20% of the domain.
	if frac := float64(inHot) / n; math.Abs(frac-0.8) > 0.03 {
		t.Errorf("self-similar hot fraction %.3f, want ≈0.80", frac)
	}
}

func TestHotSetSkew(t *testing.T) {
	h := NewHotSet(1000, 0.1, 0.9)
	r := rng.New(5)
	inHot := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := h.Draw(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("draw %d out of domain", v)
		}
		if v < 100 {
			inHot++
		}
	}
	if frac := float64(inHot) / n; math.Abs(frac-0.9) > 0.02 {
		t.Errorf("hot-set fraction %.3f, want ≈0.90", frac)
	}
}

func TestSequentialDomain(t *testing.T) {
	s := NewSequential(10)
	r := rng.New(6)
	for i := 0; i < 1000; i++ {
		if v := s.Draw(r); v < 0 || v >= 10 {
			t.Fatalf("sequential draw %d out of domain", v)
		}
	}
	if s.Domain() != 10 {
		t.Fatal("wrong domain")
	}
}

func TestDiscreteConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewUniform(0) },
		func() { NewZipf(0, 0.5) },
		func() { NewZipf(10, 1.0) },
		func() { NewZipf(10, -0.1) },
		func() { NewSelfSimilar(10, 0) },
		func() { NewSelfSimilar(0, 0.2) },
		func() { NewHotSet(10, 0, 0.5) },
		func() { NewHotSet(10, 0.5, 1) },
		func() { NewSequential(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: constructor did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLengthDistributionsBoundsAndMean(t *testing.T) {
	r := rng.New(7)
	dists := []Lengths{
		NewConstantLen(5),
		NewUniformLen(0, 20),
		NewUniformLen(3, 3),
		NewNormalLen(10, 3, 0, 20),
		NewBimodalLen(2, 18, 0.7),
	}
	for _, d := range dists {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			l := d.DrawLen(r)
			if l < d.MinLen() || l > d.MaxLen() {
				t.Fatalf("%s: length %d outside [%d,%d]", d.Name(), l, d.MinLen(), d.MaxLen())
			}
			sum += float64(l)
		}
		got := sum / n
		want := d.Mean()
		// Monte-Carlo tolerance: 4 sigma of the sample mean, with range-based variance bound.
		rangeHalf := float64(d.MaxLen()-d.MinLen()) / 2
		tol := 4*rangeHalf/math.Sqrt(n) + 1e-9
		if math.Abs(got-want) > tol {
			t.Errorf("%s: empirical mean %.4f vs declared %.4f (tol %.4f)", d.Name(), got, want, tol)
		}
	}
}

func TestNormalLenSigmaZero(t *testing.T) {
	d := NewNormalLen(25, 0, 0, 20)
	if got := d.Mean(); got != 20 {
		t.Errorf("clamped mean = %v, want 20", got)
	}
	r := rng.New(8)
	if l := d.DrawLen(r); l != 20 {
		t.Errorf("DrawLen = %d, want 20", l)
	}
}

func TestLengthConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewConstantLen(-1) },
		func() { NewUniformLen(5, 4) },
		func() { NewUniformLen(-1, 4) },
		func() { NewNormalLen(5, -1, 0, 10) },
		func() { NewBimodalLen(5, 4, 0.5) },
		func() { NewBimodalLen(1, 4, 1.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: constructor did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNamesAreDistinctive(t *testing.T) {
	names := []string{
		NewUniform(5).Name(),
		NewZipf(5, 0.5).Name(),
		NewSelfSimilar(5, 0.2).Name(),
		NewHotSet(5, 0.2, 0.8).Name(),
		NewSequential(5).Name(),
		NewConstantLen(5).Name(),
		NewUniformLen(1, 5).Name(),
		NewNormalLen(3, 1, 0, 5).Name(),
		NewBimodalLen(1, 5, 0.5).Name(),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("duplicate or empty distribution name %q", n)
		}
		seen[n] = true
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(1_000_000, 0.8)
	r := rng.New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += z.Draw(r)
	}
	_ = sink
}

func BenchmarkUniformDraw(b *testing.B) {
	u := NewUniform(1_000_000)
	r := rng.New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += u.Draw(r)
	}
	_ = sink
}
