// Package workload generates the synthetic tables the experiments run on.
//
// The paper's analysis depends on the data only through (n, d, frequency
// skew, ℓ-distribution); the generators sweep exactly those knobs while
// guaranteeing two properties the estimators rely on:
//
//   - determinism: a (seed, row index) pair always produces the same row,
//     so the same logical table can be re-visited without materialization
//     (VirtualTable) and every experiment is exactly reproducible;
//   - distinctness: different domain indices always map to different
//     payloads, so "d distinct domain values drawn" equals "d distinct
//     column values stored" and ground-truth d is exact.
package workload

import (
	"fmt"

	"samplecf/internal/distrib"
	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// ColumnGen produces the payload of one column as a deterministic function
// of the domain index drawn for a row.
type ColumnGen interface {
	// Type returns the column's logical type.
	Type() value.Type
	// Dist returns the distribution over domain indices.
	Dist() distrib.Discrete
	// Payload materializes the payload for domain index v. It must be
	// deterministic in v and injective (distinct v ⇒ distinct payload).
	Payload(v int64) []byte
	// Describe identifies the generator in experiment output.
	Describe() string
}

// base62 digits used for the uniqueness prefix of string payloads.
const base62 = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

// digitsFor returns the number of base-62 digits needed to encode any
// domain index below domain.
func digitsFor(domain int64) int {
	digits := 1
	for limit := int64(62); limit < domain; limit *= 62 {
		digits++
		if limit > domain/62 { // overflow guard
			break
		}
	}
	return digits
}

// encodeBase62 writes v as exactly `digits` base-62 characters into dst.
func encodeBase62(dst []byte, v int64, digits int) {
	for i := digits - 1; i >= 0; i-- {
		dst[i] = base62[v%62]
		v /= 62
	}
}

// StringColumn generates character payloads: a base-62 uniqueness prefix
// (identifying the domain index) followed by pseudo-random filler up to a
// length drawn from Lengths. The drawn length is clamped up to the prefix
// width, so extremely short length distributions over huge domains degrade
// gracefully (documented bias toward the prefix width).
type StringColumn struct {
	Typ     value.Type
	D       distrib.Discrete
	Lengths distrib.Lengths
	Seed    uint64

	digits int
}

// NewStringColumn validates and builds a string column generator.
func NewStringColumn(typ value.Type, d distrib.Discrete, lengths distrib.Lengths, seed uint64) (*StringColumn, error) {
	if !typ.IsCharacter() {
		return nil, fmt.Errorf("workload: string column needs character type, got %s", typ)
	}
	if err := typ.Validate(); err != nil {
		return nil, err
	}
	digits := digitsFor(d.Domain())
	if digits > typ.Length {
		return nil, fmt.Errorf("workload: domain %d needs %d prefix chars, %s holds %d",
			d.Domain(), digits, typ, typ.Length)
	}
	if lengths.MaxLen() > typ.Length {
		return nil, fmt.Errorf("workload: max length %d exceeds %s", lengths.MaxLen(), typ)
	}
	return &StringColumn{Typ: typ, D: d, Lengths: lengths, Seed: seed, digits: digits}, nil
}

// Type implements ColumnGen.
func (s *StringColumn) Type() value.Type { return s.Typ }

// Dist implements ColumnGen.
func (s *StringColumn) Dist() distrib.Discrete { return s.D }

// Payload implements ColumnGen.
func (s *StringColumn) Payload(v int64) []byte {
	r := rng.New(s.Seed ^ uint64(v)*0x9e3779b97f4a7c15)
	l := s.Lengths.DrawLen(r)
	if l < s.digits {
		l = s.digits
	}
	out := make([]byte, l)
	encodeBase62(out[:s.digits], v, s.digits)
	for i := s.digits; i < l; i++ {
		out[i] = byte('a' + r.Intn(26))
	}
	return out
}

// Describe implements ColumnGen.
func (s *StringColumn) Describe() string {
	return fmt.Sprintf("%s %s len=%s", s.Typ, s.D.Name(), s.Lengths.Name())
}

// IntColumn generates integer payloads: the domain index plus an offset.
type IntColumn struct {
	Typ    value.Type
	D      distrib.Discrete
	Offset int64
}

// NewIntColumn validates and builds an integer column generator.
func NewIntColumn(typ value.Type, d distrib.Discrete, offset int64) (*IntColumn, error) {
	switch typ.Kind {
	case value.KindInt32:
		if max := d.Domain() - 1 + offset; max > 1<<31-1 || offset < -(1<<31) {
			return nil, fmt.Errorf("workload: domain %d with offset %d overflows INT", d.Domain(), offset)
		}
	case value.KindInt64:
		// int64 domain indexes cannot overflow int64 with reasonable offsets.
	default:
		return nil, fmt.Errorf("workload: int column needs integer type, got %s", typ)
	}
	return &IntColumn{Typ: typ, D: d, Offset: offset}, nil
}

// Type implements ColumnGen.
func (c *IntColumn) Type() value.Type { return c.Typ }

// Dist implements ColumnGen.
func (c *IntColumn) Dist() distrib.Discrete { return c.D }

// Payload implements ColumnGen.
func (c *IntColumn) Payload(v int64) []byte {
	if c.Typ.Kind == value.KindInt32 {
		return value.IntValue(int32(v + c.Offset))
	}
	return value.Int64Value(v + c.Offset)
}

// Describe implements ColumnGen.
func (c *IntColumn) Describe() string {
	return fmt.Sprintf("%s %s offset=%d", c.Typ, c.D.Name(), c.Offset)
}
