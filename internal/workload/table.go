package workload

import (
	"fmt"
	"slices"

	"samplecf/internal/catalog"
	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// Layout controls the physical row order of a materialized table. It does
// not change the value distribution — only which rows are neighbors, the
// property block sampling (E7) is sensitive to.
type Layout int

const (
	// LayoutShuffled stores rows in independent random draw order.
	LayoutShuffled Layout = iota
	// LayoutClustered stores rows sorted by the first column, modeling a
	// clustered index organization where equal values share pages.
	LayoutClustered
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case LayoutShuffled:
		return "shuffled"
	case LayoutClustered:
		return "clustered"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Spec describes a synthetic table.
type Spec struct {
	Name   string
	N      int64
	Seed   uint64
	Cols   []SpecColumn
	Layout Layout
}

// SpecColumn pairs a column name with its generator.
type SpecColumn struct {
	Name string
	Gen  ColumnGen
}

// Schema derives the value.Schema of the spec.
func (s Spec) Schema() (*value.Schema, error) {
	cols := make([]value.Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = value.Column{Name: c.Name, Type: c.Gen.Type()}
	}
	return value.NewSchema(cols...)
}

// rowOf materializes row i of the spec: one independent domain draw per
// column from a per-(seed, column, row) derived generator.
func (s Spec) rowOf(i int64) value.Row {
	row := make(value.Row, len(s.Cols))
	for c, col := range s.Cols {
		r := rng.New(s.Seed ^ uint64(c+1)*0xd1342543de82ef95 ^ uint64(i)*0x9e3779b97f4a7c15)
		v := col.Gen.Dist().Draw(r)
		row[c] = col.Gen.Payload(v)
	}
	return row
}

// domainOf returns the domain index drawn for (row i, column c) — the same
// draw rowOf makes, exposed for exact distinct counting.
func (s Spec) domainOf(i int64, c int) int64 {
	r := rng.New(s.Seed ^ uint64(c+1)*0xd1342543de82ef95 ^ uint64(i)*0x9e3779b97f4a7c15)
	return s.Cols[c].Gen.Dist().Draw(r)
}

// Table is a fully materialized synthetic table. It implements
// catalog.Table (the embedded Version supplies epoch + instance id;
// physical reorders bump the epoch); AsPageSource adapts it for block
// sampling.
type Table struct {
	catalog.Version
	name   string
	schema *value.Schema
	rows   []value.Row
}

var _ catalog.Table = (*Table)(nil)

// Generate materializes a table from spec.
func Generate(spec Spec) (*Table, error) {
	if spec.N < 0 {
		return nil, fmt.Errorf("workload: negative row count %d", spec.N)
	}
	if len(spec.Cols) == 0 {
		return nil, fmt.Errorf("workload: spec has no columns")
	}
	schema, err := spec.Schema()
	if err != nil {
		return nil, err
	}
	rows := make([]value.Row, spec.N)
	for i := int64(0); i < spec.N; i++ {
		rows[i] = spec.rowOf(i)
	}
	t := &Table{Version: catalog.NewVersion(), name: spec.Name, schema: schema, rows: rows}
	if spec.Layout == LayoutClustered {
		t.SortByColumn(0)
	}
	return t, nil
}

// NewTableFromRows wraps existing rows (used by CSV import and tests).
func NewTableFromRows(name string, schema *value.Schema, rows []value.Row) (*Table, error) {
	for i, r := range rows {
		if err := value.ValidateRow(schema, r); err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", i, err)
		}
	}
	return &Table{Version: catalog.NewVersion(), name: name, schema: schema, rows: rows}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *value.Schema { return t.schema }

// NumRows implements sampling.RowSource.
func (t *Table) NumRows() int64 { return int64(len(t.rows)) }

// Row implements sampling.RowSource.
func (t *Table) Row(i int64) (value.Row, error) {
	if i < 0 || i >= int64(len(t.rows)) {
		return nil, fmt.Errorf("workload: row %d out of range [0,%d)", i, len(t.rows))
	}
	return t.rows[i], nil
}

// Rows exposes the backing slice (not a copy; callers must not mutate).
func (t *Table) Rows() []value.Row { return t.rows }

// StableRows marks the table as a sampling.StableRowSource: rows only move
// through the explicit re-layout calls (SortByColumn, Shuffle) the owner
// serializes around readers, so concurrent sweeps see one frozen state.
func (t *Table) StableRows() {}

// Scan iterates all rows in storage order.
func (t *Table) Scan(fn func(i int64, row value.Row) error) error {
	for i, r := range t.rows {
		if err := fn(int64(i), r); err != nil {
			return err
		}
	}
	return nil
}

// SortByColumn physically sorts rows by the given column (clustered
// layout). The reorder bumps the version epoch: row indices shift, so
// anything keyed on the previous epoch (cached estimates, samples) is
// stale.
func (t *Table) SortByColumn(col int) {
	typ := t.schema.Column(col).Type
	slices.SortStableFunc(t.rows, func(a, b value.Row) int {
		return value.CompareValues(typ, a[col], b[col])
	})
	t.Bump()
}

// Shuffle randomizes physical row order with g and bumps the epoch.
func (t *Table) Shuffle(g *rng.RNG) {
	g.Shuffle(len(t.rows), func(i, j int) { t.rows[i], t.rows[j] = t.rows[j], t.rows[i] })
	t.Bump()
}

// PageView adapts the table to sampling.PageSource with a fixed number of
// rows per synthetic page.
type PageView struct {
	t       *Table
	perPage int
}

// AsPageSource groups the table's rows into pages of perPage rows.
func (t *Table) AsPageSource(perPage int) (*PageView, error) {
	if perPage <= 0 {
		return nil, fmt.Errorf("workload: perPage %d must be positive", perPage)
	}
	return &PageView{t: t, perPage: perPage}, nil
}

// NumPages implements sampling.PageSource.
func (p *PageView) NumPages() int {
	return int((p.t.NumRows() + int64(p.perPage) - 1) / int64(p.perPage))
}

// PageRows implements sampling.PageSource.
func (p *PageView) PageRows(i int) ([]value.Row, error) {
	start := int64(i) * int64(p.perPage)
	if start >= p.t.NumRows() {
		return nil, fmt.Errorf("workload: page %d out of range", i)
	}
	end := start + int64(p.perPage)
	if end > p.t.NumRows() {
		end = p.t.NumRows()
	}
	return p.t.rows[start:end], nil
}

// VirtualTable is a generator-backed table that never materializes rows:
// row i is recomputed on demand. It makes the paper's Example 1 (n = 10⁸)
// runnable in constant memory. Virtual tables always have IID (shuffled)
// layout, are immutable, and therefore stay at epoch 0 forever.
type VirtualTable struct {
	catalog.Version
	spec   Spec
	schema *value.Schema
}

var _ catalog.Table = (*VirtualTable)(nil)

// NewVirtual builds a virtual table over spec.
func NewVirtual(spec Spec) (*VirtualTable, error) {
	if spec.N < 0 {
		return nil, fmt.Errorf("workload: negative row count %d", spec.N)
	}
	if len(spec.Cols) == 0 {
		return nil, fmt.Errorf("workload: spec has no columns")
	}
	if spec.Layout != LayoutShuffled {
		return nil, fmt.Errorf("workload: virtual tables support only the shuffled layout")
	}
	schema, err := spec.Schema()
	if err != nil {
		return nil, err
	}
	return &VirtualTable{Version: catalog.NewVersion(), spec: spec, schema: schema}, nil
}

// Name returns the table name.
func (v *VirtualTable) Name() string { return v.spec.Name }

// Schema returns the table schema.
func (v *VirtualTable) Schema() *value.Schema { return v.schema }

// NumRows implements sampling.RowSource.
func (v *VirtualTable) NumRows() int64 { return v.spec.N }

// StableRows marks the table as a sampling.StableRowSource: rows are pure
// functions of the row index, so any sweep is trivially consistent.
func (v *VirtualTable) StableRows() {}

// Row implements sampling.RowSource.
func (v *VirtualTable) Row(i int64) (value.Row, error) {
	if i < 0 || i >= v.spec.N {
		return nil, fmt.Errorf("workload: row %d out of range [0,%d)", i, v.spec.N)
	}
	return v.spec.rowOf(i), nil
}

// Scan iterates all rows; O(1) memory, O(n) time.
func (v *VirtualTable) Scan(fn func(i int64, row value.Row) error) error {
	for i := int64(0); i < v.spec.N; i++ {
		if err := fn(i, v.spec.rowOf(i)); err != nil {
			return err
		}
	}
	return nil
}

// DomainAt exposes the domain index drawn for (row, column), letting stats
// code count distincts over domain indices (bitset) instead of payloads.
func (v *VirtualTable) DomainAt(i int64, col int) int64 { return v.spec.domainOf(i, col) }
