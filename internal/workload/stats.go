package workload

import (
	"fmt"
	"math/bits"

	"samplecf/internal/value"
)

// ColumnStats is exact ground truth for one column of a generated table —
// the quantities the paper's closed-form CF expressions need.
type ColumnStats struct {
	// N is the number of rows.
	N int64
	// Distinct is the exact number of distinct values present (the paper's
	// d — note: values PRESENT, which can be below the generator domain).
	Distinct int64
	// SumNS is Σ ℓᵢ: the total null-suppressed length in bytes.
	SumNS int64
	// SumNSSq is Σ ℓᵢ², for the exact variance of ℓ.
	SumNSSq float64
	// MinNS and MaxNS bound the observed ℓ.
	MinNS, MaxNS int
}

// MeanNS returns the exact mean null-suppressed length.
func (c ColumnStats) MeanNS() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.SumNS) / float64(c.N)
}

// VarNS returns the exact population variance of ℓ.
func (c ColumnStats) VarNS() float64 {
	if c.N == 0 {
		return 0
	}
	m := c.MeanNS()
	return c.SumNSSq/float64(c.N) - m*m
}

// CFNullSuppression returns the paper's exact CF_NS = Σ(ℓᵢ+h)/(n·k) for a
// column of fixed width k with length-header size h.
func (c ColumnStats) CFNullSuppression(k, h int) float64 {
	if c.N == 0 || k == 0 {
		return 1
	}
	return (float64(c.SumNS) + float64(c.N)*float64(h)) / (float64(c.N) * float64(k))
}

// CFGlobalDict returns the paper's simplified-model CF_D = p/k + d/n.
func (c ColumnStats) CFGlobalDict(k, p int) float64 {
	if c.N == 0 || k == 0 {
		return 1
	}
	return float64(p)/float64(k) + float64(c.Distinct)/float64(c.N)
}

// Scanner is the table shape stats computation needs; both Table and
// VirtualTable satisfy it.
type Scanner interface {
	Schema() *value.Schema
	NumRows() int64
	Scan(fn func(i int64, row value.Row) error) error
}

// ComputeStats scans src once and returns exact per-column statistics.
// For VirtualTable inputs, distinct counting uses a bitset over generator
// domain indices (O(d/8) memory); otherwise a hash set over payloads.
func ComputeStats(src Scanner) ([]ColumnStats, error) {
	schema := src.Schema()
	ncols := schema.NumColumns()
	out := make([]ColumnStats, ncols)

	vt, isVirtual := src.(*VirtualTable)
	var bitsets [][]uint64
	var seen []map[string]struct{}
	if isVirtual {
		bitsets = make([][]uint64, ncols)
		for c := 0; c < ncols; c++ {
			d := vt.spec.Cols[c].Gen.Dist().Domain()
			bitsets[c] = make([]uint64, (d+63)/64)
		}
	} else {
		seen = make([]map[string]struct{}, ncols)
		for c := range seen {
			seen[c] = make(map[string]struct{})
		}
	}

	first := true
	err := src.Scan(func(i int64, row value.Row) error {
		for c := 0; c < ncols; c++ {
			l := value.NullSuppressedLen(schema.Column(c).Type, row[c])
			out[c].N++
			out[c].SumNS += int64(l)
			out[c].SumNSSq += float64(l) * float64(l)
			if first || l < out[c].MinNS {
				out[c].MinNS = l
			}
			if first || l > out[c].MaxNS {
				out[c].MaxNS = l
			}
			if isVirtual {
				v := vt.DomainAt(i, c)
				bitsets[c][v/64] |= 1 << (uint(v) % 64)
			} else {
				seen[c][string(row[c])] = struct{}{}
			}
		}
		first = false
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("workload: compute stats: %w", err)
	}
	for c := 0; c < ncols; c++ {
		if isVirtual {
			var d int64
			for _, w := range bitsets[c] {
				d += int64(bits.OnesCount64(w))
			}
			out[c].Distinct = d
		} else {
			out[c].Distinct = int64(len(seen[c]))
		}
	}
	return out, nil
}
