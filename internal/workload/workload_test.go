package workload

import (
	"bytes"
	"math"
	"testing"

	"samplecf/internal/distrib"
	"samplecf/internal/rng"
	"samplecf/internal/value"
)

// smallSpec builds a simple single-CHAR-column spec.
func smallSpec(t testing.TB, n, d int64, seed uint64) Spec {
	t.Helper()
	col, err := NewStringColumn(value.Char(20), distrib.NewUniform(d), distrib.NewUniformLen(4, 12), seed)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Name: "t", N: n, Seed: seed, Cols: []SpecColumn{{Name: "a", Gen: col}}}
}

func TestDigitsFor(t *testing.T) {
	cases := []struct {
		d    int64
		want int
	}{
		{1, 1}, {62, 1}, {63, 2}, {62 * 62, 2}, {62*62 + 1, 3}, {1 << 40, 7},
	}
	for _, c := range cases {
		if got := digitsFor(c.d); got != c.want {
			t.Errorf("digitsFor(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestStringColumnInjective(t *testing.T) {
	col, err := NewStringColumn(value.Char(20), distrib.NewUniform(5000), distrib.NewConstantLen(6), 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int64{}
	for v := int64(0); v < 5000; v++ {
		p := string(col.Payload(v))
		if prev, dup := seen[p]; dup {
			t.Fatalf("payload collision: %d and %d both map to %q", prev, v, p)
		}
		seen[p] = v
	}
}

func TestStringColumnDeterministic(t *testing.T) {
	col, err := NewStringColumn(value.Char(20), distrib.NewUniform(100), distrib.NewUniformLen(3, 15), 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 100; v++ {
		if !bytes.Equal(col.Payload(v), col.Payload(v)) {
			t.Fatalf("payload for %d not deterministic", v)
		}
	}
}

func TestStringColumnLengthClamping(t *testing.T) {
	// Domain needs 3 digits; drawn length 1 must clamp up to 3.
	col, err := NewStringColumn(value.Char(20), distrib.NewUniform(62*62+1), distrib.NewConstantLen(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(col.Payload(0)); got != 3 {
		t.Fatalf("clamped payload length %d, want 3", got)
	}
}

func TestStringColumnValidation(t *testing.T) {
	if _, err := NewStringColumn(value.Int32(), distrib.NewUniform(10), distrib.NewConstantLen(2), 1); err == nil {
		t.Error("integer type accepted")
	}
	// Domain too large for the column width.
	if _, err := NewStringColumn(value.Char(2), distrib.NewUniform(1<<40), distrib.NewConstantLen(2), 1); err == nil {
		t.Error("oversized domain accepted")
	}
	if _, err := NewStringColumn(value.Char(4), distrib.NewUniform(10), distrib.NewConstantLen(10), 1); err == nil {
		t.Error("length > column width accepted")
	}
}

func TestIntColumn(t *testing.T) {
	col, err := NewIntColumn(value.Int32(), distrib.NewUniform(1000), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got := value.DecodeInt32(col.Payload(7)); got != 5007 {
		t.Fatalf("payload(7) = %d, want 5007", got)
	}
	if _, err := NewIntColumn(value.Int32(), distrib.NewUniform(1<<40), 0); err == nil {
		t.Error("overflow domain accepted")
	}
	if _, err := NewIntColumn(value.Char(4), distrib.NewUniform(10), 0); err == nil {
		t.Error("char type accepted")
	}
	c64, err := NewIntColumn(value.Int64(), distrib.NewUniform(1<<40), -3)
	if err != nil {
		t.Fatal(err)
	}
	if got := value.DecodeInt64(c64.Payload(10)); got != 7 {
		t.Fatalf("int64 payload = %d", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := smallSpec(t, 500, 50, 42)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 500 {
		t.Fatalf("NumRows = %d", a.NumRows())
	}
	for i := int64(0); i < 500; i++ {
		ra, _ := a.Row(i)
		rb, _ := b.Row(i)
		if !bytes.Equal(ra[0], rb[0]) {
			t.Fatalf("row %d differs between identical specs", i)
		}
	}
	// Different seed differs somewhere.
	spec2 := smallSpec(t, 500, 50, 43)
	c, err := Generate(spec2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := int64(0); i < 500; i++ {
		ra, _ := a.Row(i)
		rc, _ := c.Row(i)
		if bytes.Equal(ra[0], rc[0]) {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/500 identical rows", same)
	}
}

func TestVirtualMatchesMaterialized(t *testing.T) {
	spec := smallSpec(t, 300, 40, 11)
	mat, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	virt, err := NewVirtual(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		rm, _ := mat.Row(i)
		rv, err := virt.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rm[0], rv[0]) {
			t.Fatalf("row %d: virtual %q vs materialized %q", i, rv[0], rm[0])
		}
	}
	if _, err := virt.Row(300); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestVirtualRejectsClustered(t *testing.T) {
	spec := smallSpec(t, 10, 5, 1)
	spec.Layout = LayoutClustered
	if _, err := NewVirtual(spec); err == nil {
		t.Fatal("clustered virtual accepted")
	}
}

func TestClusteredLayoutSorted(t *testing.T) {
	spec := smallSpec(t, 400, 10, 3)
	spec.Layout = LayoutClustered
	tab, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	typ := tab.Schema().Column(0).Type
	for i := int64(1); i < tab.NumRows(); i++ {
		prev, _ := tab.Row(i - 1)
		cur, _ := tab.Row(i)
		if value.CompareValues(typ, prev[0], cur[0]) > 0 {
			t.Fatalf("clustered layout not sorted at row %d", i)
		}
	}
}

func TestComputeStatsExactness(t *testing.T) {
	spec := smallSpec(t, 2000, 100, 5)
	tab, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStats(tab)
	if err != nil {
		t.Fatal(err)
	}
	cs := st[0]
	if cs.N != 2000 {
		t.Fatalf("N = %d", cs.N)
	}
	// Recompute by hand.
	var sum, sumSq int64
	seen := map[string]bool{}
	minL, maxL := 1<<30, 0
	_ = tab.Scan(func(_ int64, row value.Row) error {
		l := len(row[0])
		sum += int64(l)
		sumSq += int64(l) * int64(l)
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
		seen[string(row[0])] = true
		return nil
	})
	if cs.SumNS != sum || cs.SumNSSq != float64(sumSq) {
		t.Fatalf("SumNS %d vs %d, SumNSSq %v vs %d", cs.SumNS, sum, cs.SumNSSq, sumSq)
	}
	if int(cs.Distinct) != len(seen) {
		t.Fatalf("Distinct %d vs %d", cs.Distinct, len(seen))
	}
	if cs.MinNS != minL || cs.MaxNS != maxL {
		t.Fatalf("Min/Max %d/%d vs %d/%d", cs.MinNS, cs.MaxNS, minL, maxL)
	}
	// CF formulas.
	k, h := 20, 1
	wantCF := (float64(sum) + 2000.0) / (2000.0 * 20.0)
	if got := cs.CFNullSuppression(k, h); math.Abs(got-wantCF) > 1e-12 {
		t.Fatalf("CFNullSuppression = %v, want %v", got, wantCF)
	}
	wantDict := 4.0/20.0 + float64(len(seen))/2000.0
	if got := cs.CFGlobalDict(20, 4); math.Abs(got-wantDict) > 1e-12 {
		t.Fatalf("CFGlobalDict = %v, want %v", got, wantDict)
	}
}

func TestComputeStatsVirtualBitsetMatchesMap(t *testing.T) {
	spec := smallSpec(t, 3000, 500, 21)
	mat, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	virt, err := NewVirtual(spec)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := ComputeStats(mat)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := ComputeStats(virt)
	if err != nil {
		t.Fatal(err)
	}
	if sm[0] != sv[0] {
		t.Fatalf("virtual stats %+v != materialized %+v", sv[0], sm[0])
	}
}

func TestMultiColumnSpec(t *testing.T) {
	sc, err := NewStringColumn(value.Char(10), distrib.NewZipf(100, 0.5), distrib.NewUniformLen(2, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIntColumn(value.Int32(), distrib.NewUniform(50), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Name: "multi", N: 100, Seed: 2, Cols: []SpecColumn{
		{Name: "s", Gen: sc},
		{Name: "n", Gen: ic},
	}}
	tab, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Schema().NumColumns() != 2 || tab.Schema().RowWidth() != 14 {
		t.Fatalf("schema %s", tab.Schema())
	}
	st, err := ComputeStats(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 || st[0].N != 100 || st[1].N != 100 {
		t.Fatalf("stats %+v", st)
	}
	if st[1].Distinct > 50 {
		t.Fatalf("int column distinct %d > domain", st[1].Distinct)
	}
}

func TestPageView(t *testing.T) {
	spec := smallSpec(t, 95, 10, 8)
	tab, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := tab.AsPageSource(10)
	if err != nil {
		t.Fatal(err)
	}
	if pv.NumPages() != 10 {
		t.Fatalf("NumPages = %d", pv.NumPages())
	}
	last, err := pv.PageRows(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 5 {
		t.Fatalf("last page has %d rows", len(last))
	}
	if _, err := pv.PageRows(10); err == nil {
		t.Fatal("page out of range accepted")
	}
	if _, err := tab.AsPageSource(0); err == nil {
		t.Fatal("perPage=0 accepted")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{N: -1, Cols: []SpecColumn{{}}}); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := Generate(Spec{N: 5}); err == nil {
		t.Error("empty columns accepted")
	}
}

func TestShuffle(t *testing.T) {
	spec := smallSpec(t, 200, 200, 4)
	tab, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]string, 200)
	for i := range before {
		r, _ := tab.Row(int64(i))
		before[i] = string(r[0])
	}
	tab.Shuffle(rng.New(1))
	moved := 0
	for i := range before {
		r, _ := tab.Row(int64(i))
		if string(r[0]) != before[i] {
			moved++
		}
	}
	if moved < 100 {
		t.Fatalf("shuffle moved only %d/200 rows", moved)
	}
}

func BenchmarkVirtualRow(b *testing.B) {
	col, err := NewStringColumn(value.Char(20), distrib.NewUniform(1_000_000), distrib.NewUniformLen(4, 16), 1)
	if err != nil {
		b.Fatal(err)
	}
	vt, err := NewVirtual(Spec{Name: "v", N: 100_000_000, Seed: 1,
		Cols: []SpecColumn{{Name: "a", Gen: col}}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vt.Row(int64(i % 100_000_000)); err != nil {
			b.Fatal(err)
		}
	}
}
