// Golden-estimate regression tests: exact SampleCF outputs for fixed seeds.
//
// The estimation hot path is aggressively optimized (arena-encoded samples,
// permutation sorts, pooled codec scratch, parallel page compression), and
// every one of those optimizations must be *bit-transparent*: for a fixed
// table, seed, and codec the estimate may not drift by even one byte of
// compressed size. These tests pin the exact (CompressedBytes,
// UncompressedBytes, SampleRows, SampleDistinct) quadruple for a matrix of
// codecs and key column sets, captured from the straightforward row-at-a-time
// implementation. Any hot-path change that alters an estimate fails here.
//
// Regenerate (after an intentional semantic change, never for a perf change):
//
//	GOLDEN_PRINT=1 go test -run TestGoldenEstimates -v . 2>&1 | grep '^\t{'
package samplecf_test

import (
	"context"
	"fmt"
	"os"
	"testing"

	"samplecf"
)

// goldenCase pins one estimate.
type goldenCase struct {
	codec      string
	cols       []string
	rows       int64 // SampleRows request (0 = use fraction)
	fraction   float64
	seed       uint64
	wor        bool // sample without replacement
	wantComp   int64
	wantUncomp int64
	wantR      int64
	wantD      int64
}

// goldenTable is the fixed estimation source: skewed strings plus a narrow
// int, 20k rows, fixed seed.
func goldenTable(t testing.TB) *samplecf.Table {
	t.Helper()
	region, err := samplecf.NewStringColumn(
		samplecf.Char(24), samplecf.Uniform(50), samplecf.UniformLen(4, 12), 1)
	if err != nil {
		t.Fatal(err)
	}
	product, err := samplecf.NewStringColumn(
		samplecf.Char(40), samplecf.Zipf(8000, 0.7), samplecf.UniformLen(10, 30), 2)
	if err != nil {
		t.Fatal(err)
	}
	qty, err := samplecf.NewIntColumn(samplecf.Int32(), samplecf.Uniform(500), 0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := samplecf.Generate(samplecf.TableSpec{
		Name: "golden", N: 20_000, Seed: 3,
		Cols: []samplecf.TableColumn{
			{Name: "region", Gen: region},
			{Name: "product", Gen: product},
			{Name: "qty", Gen: qty},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// goldenMatrix enumerates the pinned cases. The want* fields are filled by
// the table below; a case with all-zero wants is only legal in print mode.
func goldenMatrix() []goldenCase {
	var cases []goldenCase
	colsets := [][]string{nil, {"region"}, {"product"}, {"qty"}, {"region", "product"}}
	codecs := []string{
		"nullsuppression", "rle", "prefix", "pagedict", "pagedict+ns",
		"pagedict+bitpack", "page", "globaldict-p4", "huffman", "for",
	}
	for _, cols := range colsets {
		for _, codec := range codecs {
			cases = append(cases, goldenCase{
				codec: codec, cols: cols, rows: 500, seed: 7,
			})
		}
	}
	// Fraction-driven and WOR variants on a subset.
	for _, codec := range []string{"nullsuppression", "pagedict+ns", "page"} {
		cases = append(cases,
			goldenCase{codec: codec, cols: []string{"product"}, fraction: 0.01, seed: 42},
			goldenCase{codec: codec, cols: []string{"region"}, rows: 300, seed: 11, wor: true},
		)
	}
	return cases
}

func (c goldenCase) name() string {
	cols := "all"
	if len(c.cols) > 0 {
		cols = ""
		for i, s := range c.cols {
			if i > 0 {
				cols += "+"
			}
			cols += s
		}
	}
	mode := "wr"
	if c.wor {
		mode = "wor"
	}
	if c.rows > 0 {
		return fmt.Sprintf("%s/%s/r=%d/seed=%d/%s", c.codec, cols, c.rows, c.seed, mode)
	}
	return fmt.Sprintf("%s/%s/f=%v/seed=%d/%s", c.codec, cols, c.fraction, c.seed, mode)
}

func (c goldenCase) run(t testing.TB, tab *samplecf.Table) samplecf.Estimation {
	t.Helper()
	codec, err := samplecf.LookupCodec(c.codec)
	if err != nil {
		t.Fatal(err)
	}
	opts := samplecf.Options{
		Codec:      codec,
		KeyColumns: c.cols,
		SampleRows: c.rows,
		Fraction:   c.fraction,
		Seed:       c.seed,
	}
	if c.wor {
		opts.Method = samplecf.UniformWOR
	}
	est, err := samplecf.Estimate(tab, opts)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestGoldenEstimates pins the exact estimator outputs. With GOLDEN_PRINT=1
// it prints the case table instead of asserting, for regeneration after an
// intentional semantic change.
func TestGoldenEstimates(t *testing.T) {
	tab := goldenTable(t)
	if os.Getenv("GOLDEN_PRINT") != "" {
		for _, c := range goldenMatrix() {
			est := c.run(t, tab)
			t.Logf("{%d, %d, %d, %d}, // %s",
				est.Result.CompressedBytes, est.Result.UncompressedBytes,
				est.SampleRows, est.SampleDistinct, c.name())
		}
		return
	}
	cases := goldenMatrix()
	if len(cases) != len(goldenWant) {
		t.Fatalf("golden table has %d rows, matrix has %d cases", len(goldenWant), len(cases))
	}
	for i, c := range cases {
		c.wantComp, c.wantUncomp = goldenWant[i][0], goldenWant[i][1]
		c.wantR, c.wantD = goldenWant[i][2], goldenWant[i][3]
		t.Run(c.name(), func(t *testing.T) {
			est := c.run(t, tab)
			if est.Result.CompressedBytes != c.wantComp ||
				est.Result.UncompressedBytes != c.wantUncomp ||
				est.SampleRows != c.wantR ||
				est.SampleDistinct != c.wantD {
				t.Errorf("estimate drifted: got {comp=%d, uncomp=%d, r=%d, d'=%d}, want {%d, %d, %d, %d}",
					est.Result.CompressedBytes, est.Result.UncompressedBytes,
					est.SampleRows, est.SampleDistinct,
					c.wantComp, c.wantUncomp, c.wantR, c.wantD)
			}
			if want := float64(c.wantComp) / float64(c.wantUncomp); est.CF != want {
				t.Errorf("CF = %v, want %v", est.CF, want)
			}
		})
	}
}

// TestGoldenEngineMatchesDirect pins the engine's batch path to the direct
// path: for identical (table, columns, codec, sample size, seed) the engine
// must produce byte-identical estimates, shared sample and pooled scratch
// notwithstanding.
func TestGoldenEngineMatchesDirect(t *testing.T) {
	tab := goldenTable(t)
	eng := samplecf.NewEngine(samplecf.EngineConfig{CacheEntries: -1})
	defer eng.Close()

	var reqs []samplecf.EngineRequest
	var direct []samplecf.Estimation
	for _, c := range goldenMatrix() {
		if c.wor || c.rows == 0 {
			continue // engine draws WR with SampleRows
		}
		codec, err := samplecf.LookupCodec(c.codec)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, samplecf.EngineRequest{
			Table: tab, KeyColumns: c.cols, Codec: codec,
			SampleRows: c.rows, Seed: c.seed,
		})
		direct = append(direct, c.run(t, tab))
	}
	for i, res := range eng.WhatIf(context.Background(), reqs) {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		got, want := res.Estimate, direct[i]
		if got.CF != want.CF ||
			got.Result.CompressedBytes != want.Result.CompressedBytes ||
			got.Result.UncompressedBytes != want.Result.UncompressedBytes ||
			got.SampleRows != want.SampleRows ||
			got.SampleDistinct != want.SampleDistinct {
			t.Errorf("request %d: engine {cf=%v comp=%d r=%d d'=%d} != direct {cf=%v comp=%d r=%d d'=%d}",
				i, got.CF, got.Result.CompressedBytes, got.SampleRows, got.SampleDistinct,
				want.CF, want.Result.CompressedBytes, want.SampleRows, want.SampleDistinct)
		}
	}
}

// goldenWant is the pinned {CompressedBytes, UncompressedBytes, SampleRows,
// SampleDistinct} per goldenMatrix case, captured from the reference
// implementation. Regenerate with GOLDEN_PRINT=1 (see file comment).
var goldenWant = [][4]int64{
	{16620, 34000, 500, 492}, // nullsuppression/all/r=500/seed=7/wr
	{14299, 34000, 500, 492}, // rle/all/r=500/seed=7/wr
	{17251, 34000, 500, 492}, // prefix/all/r=500/seed=7/wr
	{22960, 34000, 500, 492}, // pagedict/all/r=500/seed=7/wr
	{13075, 34000, 500, 492}, // pagedict+ns/all/r=500/seed=7/wr
	{22570, 34000, 500, 492}, // pagedict+bitpack/all/r=500/seed=7/wr
	{13080, 34000, 500, 492}, // page/all/r=500/seed=7/wr
	{24968, 34000, 500, 492}, // globaldict-p4/all/r=500/seed=7/wr
	{14087, 34000, 500, 492}, // huffman/all/r=500/seed=7/wr
	{16304, 34000, 500, 492}, // for/all/r=500/seed=7/wr
	{4629, 12000, 500, 50},   // nullsuppression/region/r=500/seed=7/wr
	{590, 12000, 500, 50},    // rle/region/r=500/seed=7/wr
	{4911, 12000, 500, 50},   // prefix/region/r=500/seed=7/wr
	{1732, 12000, 500, 50},   // pagedict/region/r=500/seed=7/wr
	{988, 12000, 500, 50},    // pagedict+ns/region/r=500/seed=7/wr
	{1545, 12000, 500, 50},   // pagedict+bitpack/region/r=500/seed=7/wr
	{592, 12000, 500, 50},    // page/region/r=500/seed=7/wr
	{3208, 12000, 500, 50},   // globaldict-p4/region/r=500/seed=7/wr
	{4571, 12000, 500, 50},   // huffman/region/r=500/seed=7/wr
	{4635, 12000, 500, 50},   // for/region/r=500/seed=7/wr
	{10605, 20000, 500, 413}, // nullsuppression/product/r=500/seed=7/wr
	{9694, 20000, 500, 413},  // rle/product/r=500/seed=7/wr
	{10497, 20000, 500, 413}, // prefix/product/r=500/seed=7/wr
	{17032, 20000, 500, 413}, // pagedict/product/r=500/seed=7/wr
	{9368, 20000, 500, 413},  // pagedict+ns/product/r=500/seed=7/wr
	{16993, 20000, 500, 413}, // pagedict+bitpack/product/r=500/seed=7/wr
	{9290, 20000, 500, 413},  // page/product/r=500/seed=7/wr
	{18528, 20000, 500, 413}, // globaldict-p4/product/r=500/seed=7/wr
	{8832, 20000, 500, 413},  // huffman/product/r=500/seed=7/wr
	{10614, 20000, 500, 413}, // for/product/r=500/seed=7/wr
	{1386, 2000, 500, 308},   // nullsuppression/qty/r=500/seed=7/wr
	{1469, 2000, 500, 308},   // rle/qty/r=500/seed=7/wr
	{1755, 2000, 500, 308},   // prefix/qty/r=500/seed=7/wr
	{2236, 2000, 500, 308},   // pagedict/qty/r=500/seed=7/wr
	{1853, 2000, 500, 308},   // pagedict+ns/qty/r=500/seed=7/wr
	{1799, 2000, 500, 308},   // pagedict+bitpack/qty/r=500/seed=7/wr
	{1387, 2000, 500, 308},   // page/qty/r=500/seed=7/wr
	{3240, 2000, 500, 308},   // globaldict-p4/qty/r=500/seed=7/wr
	{2055, 2000, 500, 308},   // huffman/qty/r=500/seed=7/wr
	{1012, 2000, 500, 308},   // for/qty/r=500/seed=7/wr
	{15234, 32000, 500, 488}, // nullsuppression/region+product/r=500/seed=7/wr
	{11933, 32000, 500, 488}, // rle/region+product/r=500/seed=7/wr
	{15652, 32000, 500, 488}, // prefix/region+product/r=500/seed=7/wr
	{20702, 32000, 500, 488}, // pagedict/region+product/r=500/seed=7/wr
	{11347, 32000, 500, 488}, // pagedict+ns/region+product/r=500/seed=7/wr
	{20378, 32000, 500, 488}, // pagedict+bitpack/region+product/r=500/seed=7/wr
	{11352, 32000, 500, 488}, // page/region+product/r=500/seed=7/wr
	{21732, 32000, 500, 488}, // globaldict-p4/region+product/r=500/seed=7/wr
	{12613, 32000, 500, 488}, // huffman/region+product/r=500/seed=7/wr
	{15254, 32000, 500, 488}, // for/region+product/r=500/seed=7/wr
	{4145, 8000, 200, 177},   // nullsuppression/product/f=0.01/seed=42/wr
	{2781, 7200, 300, 50},    // nullsuppression/region/r=300/seed=11/wor
	{4003, 8000, 200, 177},   // pagedict+ns/product/f=0.01/seed=42/wr
	{782, 7200, 300, 50},     // pagedict+ns/region/r=300/seed=11/wor
	{3998, 8000, 200, 177},   // page/product/f=0.01/seed=42/wr
	{586, 7200, 300, 50},     // page/region/r=300/seed=11/wor
}
