package samplecf_test

import (
	"context"
	"testing"

	"samplecf"
)

// TestFacadeSurface exercises the remaining public wrappers end to end so
// the facade stays in sync with the internals it re-exports.
func TestFacadeSurface(t *testing.T) {
	// Types.
	if samplecf.VarChar(10).String() != "VARCHAR(10)" {
		t.Error("VarChar wrapper")
	}
	if samplecf.Int64().String() != "BIGINT" {
		t.Error("Int64 wrapper")
	}
	if string(samplecf.BigInt(5)) == "" {
		t.Error("BigInt wrapper")
	}

	// Distributions.
	for _, d := range []interface{ Domain() int64 }{
		samplecf.Uniform(10),
		samplecf.Zipf(10, 0.5),
		samplecf.HotSet(10, 0.2, 0.8),
	} {
		if d.Domain() != 10 {
			t.Errorf("distribution domain %d", d.Domain())
		}
	}
	for _, l := range []interface{ MaxLen() int }{
		samplecf.ConstantLen(5),
		samplecf.UniformLen(1, 5),
		samplecf.NormalLen(3, 1, 0, 5),
		samplecf.BimodalLen(1, 5, 0.5),
	} {
		if l.MaxLen() != 5 {
			t.Errorf("length dist max %d", l.MaxLen())
		}
	}

	// Layouts generate.
	col, err := samplecf.NewStringColumn(samplecf.Char(8), samplecf.Uniform(5), samplecf.ConstantLen(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := samplecf.Generate(samplecf.TableSpec{
		Name: "t", N: 100, Seed: 1, Layout: samplecf.LayoutClustered,
		Cols: []samplecf.TableColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 100 {
		t.Fatal("generate failed")
	}

	// Theorem bound wrappers.
	if b, err := samplecf.DictRatioErrorBoundSmallD(1000, 10, 0.1, 20, 4); err != nil || b < 1 {
		t.Errorf("small-d bound %v %v", b, err)
	}
	if b, err := samplecf.DictRatioErrorBoundLargeD(0.5, 0.1, 20, 4); err != nil || b < 1 {
		t.Errorf("large-d bound %v %v", b, err)
	}
	if samplecf.RatioError(2, 1) != 2 {
		t.Error("RatioError wrapper")
	}

	// Sampling method constants route through Options.
	codec, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := samplecf.Estimate(tab, samplecf.Options{
		Fraction: 0.5, Codec: codec, Method: samplecf.UniformWOR, Seed: 1,
	}); err != nil {
		t.Errorf("UniformWOR estimate: %v", err)
	}
	pv, err := tab.AsPageSource(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := samplecf.Estimate(tab, samplecf.Options{
		Fraction: 0.5, Codec: codec, Method: samplecf.BlockSampling, Pages: pv, Seed: 1,
	}); err != nil {
		t.Errorf("BlockSampling estimate: %v", err)
	}

	// Embedded engine via the facade.
	eng := samplecf.NewDatabase(0)
	schema, err := samplecf.NewSchema(samplecf.Column{Name: "v", Type: samplecf.VarChar(12)})
	if err != nil {
		t.Fatal(err)
	}
	dt, err := eng.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := dt.Insert(samplecf.Row{samplecf.String("abc")}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := dt.CreateIndex("ix", nil, codec)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ix.EstimateCF(nil, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// VARCHAR(12) holding "abc": CF = 4/12 exactly.
	if est.CF != 4.0/12.0 {
		t.Errorf("engine estimate %v, want 1/3", est.CF)
	}
}

// TestFacadeEngine exercises the estimation-engine wrappers: batch WhatIf
// with shared samples, the single-request path, stats, and the batch
// sizing entry point used by the advisor.
func TestFacadeEngine(t *testing.T) {
	col, err := samplecf.NewStringColumn(samplecf.Char(12), samplecf.Uniform(20), samplecf.ConstantLen(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := samplecf.Generate(samplecf.TableSpec{
		Name: "facade-engine", N: 2000, Seed: 2,
		Cols: []samplecf.TableColumn{{Name: "a", Gen: col}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := samplecf.LookupCodec("nullsuppression")
	if err != nil {
		t.Fatal(err)
	}
	rle, err := samplecf.LookupCodec("rle")
	if err != nil {
		t.Fatal(err)
	}

	eng := samplecf.NewEngine(samplecf.EngineConfig{Workers: 2})
	defer eng.Close()
	reqs := []samplecf.EngineRequest{
		{Table: tab, KeyColumns: []string{"a"}, Codec: ns, Fraction: 0.1, Seed: 3},
		{Table: tab, KeyColumns: []string{"a"}, Codec: rle, Fraction: 0.1, Seed: 3},
	}
	results := samplecf.WhatIf(context.Background(), eng, reqs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch item %d: %v", i, r.Err)
		}
		if !r.SharedSample {
			t.Errorf("item %d should share the batch sample", i)
		}
	}
	// The batch must agree with one-shot Estimate at the same seed.
	oneShot, err := samplecf.Estimate(tab, samplecf.Options{
		Fraction: 0.1, Codec: ns, KeyColumns: []string{"a"}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Estimate.CF != oneShot.CF {
		t.Errorf("engine CF %v != one-shot CF %v", results[0].Estimate.CF, oneShot.CF)
	}
	if repeat := eng.Estimate(context.Background(), reqs[0]); !repeat.CacheHit {
		t.Error("repeated request should hit the cache")
	}
	if st := eng.Stats(); st.SamplesDrawn != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 sample drawn and 1 hit", st)
	}

	// Batch candidate sizing through the facade.
	sized, err := samplecf.SizeCandidates([]samplecf.AdvisorCandidate{
		{Name: "plain", Table: tab, KeyColumns: []string{"a"}},
		{Name: "ns", Table: tab, KeyColumns: []string{"a"}, Codec: ns},
	}, samplecf.AdvisorOptions{SampleFraction: 0.1, Seed: 3, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if sized[0].EstimatedCF != 1.0 || sized[1].EstimatedCF >= 1.0 {
		t.Errorf("sized CFs = %v, %v", sized[0].EstimatedCF, sized[1].EstimatedCF)
	}
}
