module samplecf

go 1.24
